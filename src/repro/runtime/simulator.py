"""Discrete-event simulator of the parallel multifrontal factorization.

This is the reproduction's stand-in for "running MUMPS on 32 processors of
the IBM SP": the numerical kernels are replaced by their flop counts, the
network by a latency/bandwidth model, and the memory of every processor is
accounted in entries, exactly the quantity the paper's tables report.  The
scheduling decision points — slave selection for type-2 nodes, task selection
in the local pools — are delegated to strategy objects from
:mod:`repro.scheduling`, so the original MUMPS behaviour and the paper's
memory-based strategies run on an identical substrate and their stack peaks
can be compared head to head.

Four event engines execute the same simulation (selected with the
``engine=`` argument or the ``REPRO_SIM_ENGINE`` environment variable, see
``docs/benchmarks.md`` for the full anatomy):

``soa`` (default)
    The structure-of-arrays engine of :mod:`repro.runtime.soa`: processor
    and task fields live in parallel array slots, point-to-point messages
    dissolve into the flat event tuples, and the whole run executes inside
    one monolithic event loop with the handlers inlined.  Shared per-node
    geometry comes from a memoized :class:`~repro.runtime.geometry.SimGeometry`.
    A custom (non built-in) task selector silently falls back to ``flat``,
    which honours the full selector contract.

``jit``
    The SoA loop with its vectorized view updates replaced by numba-compiled
    kernels (:mod:`repro.runtime.engine_jit`).  When numba is not installed
    the engine degrades to the pure-Python ``soa`` path — same results,
    no hard dependency.

``flat`` (alias: ``fast``)
    Events are raw ``(time, seq, tag_id, a, b, c)`` tuples popped off a flat
    heap and dispatched through a handler table indexed by the integer tag;
    broadcast storms that share a timestamp are coalesced into a single
    :class:`~repro.runtime.loadview.ViewBank` column update; the built-in
    task selectors are inlined so a scheduling decision does not copy the
    pool or build a context object.

``reference``
    The historical event core — one :class:`ScheduledEvent` dataclass per
    event, string-tagged payloads dispatched through an if/elif chain,
    per-decision candidate list building and context-based task selection —
    kept executable so the fuzz suite can pin every other engine
    bit-identical to it (``tests/test_engine_identity.py``).

Faithfulness notes (documented simplifications):

* contribution blocks produced by the children of a node are routed to the
  processor that owns the node's master and freed there once the node's
  elimination finishes; in MUMPS the pieces go to the individual slaves of a
  type-2 parent, but the dominant memory terms (fronts, CB stacks, master
  blocks) are unaffected;
* a slave block's memory is charged to the slave as soon as the slave task
  *arrives* (the paper: slave tasks are activated as soon as they are
  received), even if the processor is still busy with another task;
* the type-3 root is modelled as an even split of its front and flops over
  all processors (ScaLAPACK 2-D block-cyclic distribution).
"""

from __future__ import annotations

import difflib
import heapq
import os
from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.flops import (
    type2_slave_block_entries,
    type2_slave_factor_entries,
    type2_slave_flops,
)
from repro.mapping.layers import NodeType, StaticMapping, compute_mapping
from repro.runtime.config import SimulationConfig
from repro.runtime.events import (
    EV_BROADCAST,
    EV_KICK,
    EV_MESSAGE,
    EV_RESERVATION,
    EV_TASK_DONE,
    EventQueue,
    FlatEventQueue,
)
from repro.runtime.geometry import SimGeometry
from repro.runtime.loadview import ViewBank
from repro.runtime.messages import CommunicationModel, Message, MessageKind
from repro.runtime.processor import ProcessorState
from repro.runtime.tasks import Task, TaskKind
from repro.runtime.trace import SimulationTrace
from repro.scheduling.base import (
    SlaveSelectionContext,
    TaskSelectionContext,
    SlaveSelector,
    TaskSelector,
    normalize_row_distribution,
)
from repro.scheduling.task_selection import (
    FifoTaskSelector,
    LifoTaskSelector,
    MemoryAwareTaskSelector,
)

__all__ = [
    "FactorizationSimulator",
    "SimulationResult",
    "SIM_ENGINES",
    "SIM_ENGINE_ENV",
    "ENGINE_ALIASES",
    "DEFAULT_ENGINE",
    "resolve_engine",
]

#: the event engines; all produce bit-identical :class:`SimulationResult`.
SIM_ENGINES = ("soa", "jit", "flat", "reference")

#: historical names accepted by ``resolve_engine`` and mapped to engines.
ENGINE_ALIASES = {"fast": "flat"}

#: engine used when neither ``engine=`` nor the environment selects one.
DEFAULT_ENGINE = "soa"

#: environment variable selecting the engine when ``engine=None``.
SIM_ENGINE_ENV = "REPRO_SIM_ENGINE"


def resolve_engine(engine: str | None = None) -> str:
    """Resolve and validate the engine name.

    Precedence: explicit argument, then the ``REPRO_SIM_ENGINE`` environment
    variable, then :data:`DEFAULT_ENGINE`.  Historical aliases
    (``fast`` → ``flat``) are accepted; anything else raises a
    ``ValueError`` with a did-you-mean hint when a close name exists.
    """
    if engine is None:
        engine = os.environ.get(SIM_ENGINE_ENV) or DEFAULT_ENGINE
    engine = str(engine).strip().lower()
    engine = ENGINE_ALIASES.get(engine, engine)
    if engine not in SIM_ENGINES:
        close = difflib.get_close_matches(
            engine, SIM_ENGINES + tuple(ENGINE_ALIASES), n=1, cutoff=0.5
        )
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise ValueError(
            f"unknown simulator engine {engine!r}: choose one of {SIM_ENGINES} "
            f"(or set {SIM_ENGINE_ENV}){hint}"
        )
    return engine


@dataclass
class SimulationResult:
    """Outcome of one simulated parallel factorization."""

    nprocs: int
    per_proc_peak_stack: np.ndarray
    per_proc_factor_entries: np.ndarray
    per_proc_tasks: np.ndarray
    total_time: float
    message_counts: dict[str, int]
    slave_selections: int
    nodes: int
    total_factor_entries: float
    trace: Optional[SimulationTrace] = None
    strategy_name: str = ""

    @property
    def max_peak_stack(self) -> float:
        """Maximum over the processors of the stack-memory peak (the paper's metric)."""
        return float(self.per_proc_peak_stack.max()) if self.per_proc_peak_stack.size else 0.0

    @property
    def avg_peak_stack(self) -> float:
        return float(self.per_proc_peak_stack.mean()) if self.per_proc_peak_stack.size else 0.0

    @property
    def sum_peak_stack(self) -> float:
        return float(self.per_proc_peak_stack.sum()) if self.per_proc_peak_stack.size else 0.0

    @property
    def peak_imbalance(self) -> float:
        """Max over avg of the per-processor peaks (1.0 = perfectly balanced)."""
        avg = self.avg_peak_stack
        return self.max_peak_stack / avg if avg > 0 else 1.0

    def summary(self) -> dict[str, float]:
        return {
            "max_peak_stack": self.max_peak_stack,
            "avg_peak_stack": self.avg_peak_stack,
            "sum_peak_stack": self.sum_peak_stack,
            "peak_imbalance": self.peak_imbalance,
            "total_time": self.total_time,
            "total_factor_entries": self.total_factor_entries,
            "messages": float(sum(self.message_counts.values())),
        }


class _NodeState:
    """Book-keeping of one assembly-tree node during the simulation."""

    __slots__ = (
        "children_remaining",
        "completed",
        "master_done",
        "slaves_pending",
        "cb_pieces",
        "activated",
        "root_shares_pending",
    )

    def __init__(self, nchildren: int) -> None:
        self.children_remaining = nchildren
        self.completed = False
        self.master_done = False
        self.slaves_pending = 0
        self.cb_pieces: list[tuple[int, float]] = []
        self.activated = False
        self.root_shares_pending = 0


class FactorizationSimulator:
    """Simulate one parallel multifrontal factorization of an assembly tree."""

    def __init__(
        self,
        tree,
        *,
        config: SimulationConfig | None = None,
        mapping: StaticMapping | None = None,
        slave_selector: SlaveSelector,
        task_selector: TaskSelector,
        strategy_name: str = "",
        views: ViewBank | None = None,
        engine: str | None = None,
        geometry: SimGeometry | None = None,
    ) -> None:
        self.tree = tree
        self.config = config if config is not None else SimulationConfig()
        self.engine = resolve_engine(engine)
        # the *execution* path may differ from the requested engine: the SoA
        # loop inlines the built-in task selectors, so a custom selector
        # (whose ``select`` contract needs the object pool) degrades to the
        # flat engine — same results, full contract
        sel_type = type(task_selector)
        if sel_type is LifoTaskSelector:
            self._soa_task_mode = 0
        elif sel_type is FifoTaskSelector:
            self._soa_task_mode = 1
        elif sel_type is MemoryAwareTaskSelector:
            self._soa_task_mode = 2
        else:
            self._soa_task_mode = None
        exec_engine = self.engine
        if exec_engine in ("soa", "jit") and self._soa_task_mode is None:
            exec_engine = "flat"
        self._exec_engine = exec_engine
        if mapping is None:
            mapping = compute_mapping(
                tree,
                self.config.nprocs,
                type2_front_threshold=self.config.type2_front_threshold,
                type2_cb_threshold=self.config.type2_cb_threshold,
                type3_front_threshold=self.config.type3_front_threshold,
                imbalance_tolerance=self.config.imbalance_tolerance,
                min_subtrees_per_proc=self.config.min_subtrees_per_proc,
                subtree_cost=self.config.subtree_cost,
            )
        if mapping.nprocs != self.config.nprocs:
            raise ValueError("mapping.nprocs does not match config.nprocs")
        self.mapping = mapping
        self.slave_selector = slave_selector
        self.task_selector = task_selector
        self.strategy_name = strategy_name

        self.comm = CommunicationModel(
            latency=self.config.latency,
            bandwidth_entries=self.config.bandwidth_entries,
            small_message_latency=self.config.memory_message_latency,
        )
        # deterministic fault injection: the compiled plan (or None) plus one
        # message-loss draw stream per simulator run.  ``faults=None`` must
        # keep every engine bit-identical, so the plan gates each perturbed
        # expression behind an explicit ``is None`` branch.
        if self.config.faults:
            from repro.faults import FaultPlan  # deferred: keeps runtime importable alone

            self.fault_plan = FaultPlan.compile(
                self.config.faults, nprocs=self.config.nprocs, seed=self.config.fault_seed
            )
            self._fault_msg = self.fault_plan.message_stream()
        else:
            self.fault_plan = None
            self._fault_msg = None
        # all queues order events by (time, seq) and receive identical push
        # sequences, so the engines pop events in exactly the same order
        self.queue = EventQueue() if exec_engine == "reference" else FlatEventQueue()
        # all system views live in one bank: broadcast and reservation events
        # touch every processor at once, which the bank applies as single
        # numpy column updates instead of per-processor loops
        if views is None:
            views = ViewBank(self.config.nprocs)
        if views.nprocs != self.config.nprocs:
            raise ValueError("views.nprocs does not match config.nprocs")
        views.reset()  # a reused bank must not leak a previous run's beliefs
        self.views = views
        self.procs = [
            ProcessorState(proc=p, nprocs=self.config.nprocs, view=views.view(p))
            for p in range(self.config.nprocs)
        ]
        for p in self.procs:
            p.memory.track_trace = self.config.track_traces
        # per-node book-keeping of the object engines; built in ``_setup``
        # (the SoA loop keeps its own array state instead)
        self.node_state: list[_NodeState] | None = None
        self._geometry_arg = geometry
        self.geometry: SimGeometry | None = None
        self.state = None  # the SoA engine attaches its final SimState here
        self.message_counts: dict[str, int] = defaultdict(int)
        self.slave_selections = 0
        # upper-layer tasks owned by a processor whose activation is imminent
        # (>= 1 child completed) — drives the Section 5.1 master prediction
        self.upcoming_master: list[dict[int, float]] = [dict() for _ in range(self.config.nprocs)]
        self._finished_nodes = 0
        self._ran = False

        if exec_engine == "reference":
            self._try_start = self._try_start_reference
        else:
            self._try_start = self._try_start_fast
            self._fast_task_pick = self._resolve_fast_task_pick()

    # ------------------------------------------------------------------ #
    # geometry helpers (fast scalar reads of the arrays built in _setup)
    # ------------------------------------------------------------------ #
    def _node_flops(self, node: int) -> float:
        return self._task_flops[node]

    def _activation_memory(self, node: int) -> float:
        """Entries added to the owner's stack when the node's task is activated."""
        return self._task_memory[node]

    def _make_static_task(self, node: int) -> Task:
        if self._node_type[node] == _TYPE2:
            task_kind = TaskKind.TYPE2_MASTER
        else:
            task_kind = TaskKind.TYPE1
        return Task(
            kind=task_kind,
            node=node,
            proc=self._owner[node],
            flops=self._task_flops[node],
            memory_cost=self._task_memory[node],
            in_subtree=self._subtree_of[node],
        )

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def _precompute_geometry(self) -> None:
        """Bind the per-node scheduling geometry (shared :class:`SimGeometry`).

        The geometry is a pure function of ``(tree, mapping, nprocs)``:
        either the caller passed one (the batched sweep path) or the memoized
        :meth:`SimGeometry.for_run` provides it.  Scalar plain-list mirrors
        are re-exposed under the historical attribute names the object
        engines read on their per-event hot paths.
        """
        if getattr(self, "_geometry_ready", False):
            return
        geom = self._geometry_arg
        if geom is None:
            geom = SimGeometry.for_run(self.tree, self.mapping, self.config.nprocs)
        elif geom.nprocs != self.config.nprocs:
            raise ValueError("geometry.nprocs does not match config.nprocs")
        self.geometry = geom
        self._task_flops = geom.task_flops
        self._task_memory = geom.task_memory
        self._front_entries = geom.front_entries
        self._factor_entries = geom.factor_entries
        self._cb_entries = geom.cb_entries
        self._master_entries = geom.master_entries
        self._assembly_flops = geom.assembly_flops
        self._npiv = geom.npiv
        self._nfront = geom.nfront
        self._node_type = geom.node_type
        self._owner = geom.owner
        self._subtree_of = geom.subtree_of
        self._parent = geom.parent
        self._children = geom.children
        self._tree_leaves = geom.tree_leaves
        self._type2_candidates = geom.type2_candidates
        self._liu_order = geom.liu_order
        self.subtree_peaks = geom.subtree_peaks
        # only flag readiness once every array exists: a mid-build failure
        # must surface again at the next call, not as a distant AttributeError
        self._geometry_ready = True

    def _initial_pool_order(self, proc: int, my_subtrees: list[int] | None = None) -> list[int]:
        """Leaf nodes assigned to ``proc`` in the order they should be processed.

        Delegates to :meth:`SimGeometry.initial_pool_order` (the Section 5.2
        pool initialisation); kept as a method for standalone callers such as
        the Figure 7 harness.
        """
        self._precompute_geometry()
        return self.geometry.initial_pool_order(proc, my_subtrees)

    def _setup(self) -> None:
        cfg = self.config
        self._precompute_geometry()
        geom = self.geometry
        self.node_state = [_NodeState(n) for n in geom.nchildren]
        initial_load = geom.initial_load
        for p in self.procs:
            p.load_remaining = float(initial_load[p.proc])
            # everyone starts with the same (exact) static knowledge of the loads
            for q in range(cfg.nprocs):
                p.view.set_load(q, float(initial_load[q]))

        # initial pools: the leaves, deepest-first subtree by subtree
        for p in self.procs:
            for node in reversed(geom.pool_orders[p.proc]):
                p.push_ready_task(self._make_static_task(node))

        # a single-node tree (or type-3 leaves) must still start somewhere
        for i in self._tree_leaves:
            if self._node_type[i] == _TYPE3:
                self._root_ready(i, 0.0)

        for p in range(cfg.nprocs):
            self.queue.push_kick(0.0, p)

    # ------------------------------------------------------------------ #
    # broadcasts and views
    # ------------------------------------------------------------------ #
    def _broadcast(self, kind: str, source: int, value: float, delay: float | None = None) -> None:
        if self.config.nprocs <= 1:
            return
        if delay is None:
            delay = self.comm.notification_time()
        self.queue.push_broadcast_after(delay, kind, source, value)
        self.message_counts[kind] += self.config.nprocs - 1

    def _memory_changed(self, proc: int) -> None:
        p = self.procs[proc]
        p.note_observed_peak()
        value = float(p.memory.stack)
        if value != p.last_broadcast_memory:
            p.last_broadcast_memory = value
            self._broadcast("memory", proc, value)
        # a processor always knows its own memory exactly
        p.view.memory[proc] = value

    def _load_changed(self, proc: int) -> None:
        p = self.procs[proc]
        value = float(p.load_remaining)
        if value != p.last_broadcast_load:
            p.last_broadcast_load = value
            self._broadcast("load", proc, value)
        p.view.load[proc] = max(value, 0.0)

    def _prediction_changed(self, proc: int) -> None:
        p = self.procs[proc]
        value = max(self.upcoming_master[proc].values(), default=0.0)
        if value != p.last_broadcast_prediction:
            p.last_broadcast_prediction = value
            self._broadcast("prediction", proc, value)
        p.view.predicted_master[proc] = max(value, 0.0)

    def _subtree_changed(self, proc: int, value: float) -> None:
        p = self.procs[proc]
        p.current_subtree_peak = value
        p.view.subtree_peak[proc] = max(value, 0.0)
        self._broadcast("subtree", proc, value)

    # ------------------------------------------------------------------ #
    # task activation
    # ------------------------------------------------------------------ #
    def _try_start_reference(self, proc: int) -> None:
        """Historical task activation: context object over a copied pool."""
        p = self.procs[proc]
        if p.current_task is not None:
            return
        now = self.queue.now
        task: Task | None = None
        if p.slave_queue:
            task = p.slave_queue.popleft()
        elif p.pool:
            ctx = TaskSelectionContext(
                proc=proc,
                pool=list(p.pool),
                current_memory=float(p.memory.stack),
                current_subtree=p.current_subtree,
                current_subtree_peak=p.current_subtree_peak,
                observed_peak=p.observed_peak,
            )
            index = int(self.task_selector.select(ctx))
            if not 0 <= index < len(p.pool):
                raise ValueError(
                    f"task selector {self.task_selector!r} returned invalid index {index}"
                )
            task = p.pop_task(index)
        if task is None:
            return
        self._activate(task, now)

    def _try_start_fast(self, proc: int) -> None:
        """Fast task activation: built-in selectors are inlined over the live
        pool (no copy, no context object); custom selectors fall back to the
        reference path so their contract is unchanged."""
        p = self.procs[proc]
        if p.current_task is not None:
            return
        if p.slave_queue:
            self._activate(p.slave_queue.popleft(), self.queue.now)
            return
        if not p.pool:
            return
        pick = self._fast_task_pick
        if pick is None:
            self._try_start_reference(proc)
            return
        self._activate(p.pool.pop(pick(p)), self.queue.now)

    def _resolve_fast_task_pick(self):
        """Inline pick function for the exact built-in selector types.

        Returns ``None`` for anything else (including subclasses, which may
        override ``select``), in which case the fast engine falls back to the
        reference context path.
        """
        sel_type = type(self.task_selector)
        if sel_type is LifoTaskSelector:
            return lambda p: len(p.pool) - 1
        if sel_type is FifoTaskSelector:
            return lambda p: 0
        if sel_type is MemoryAwareTaskSelector:
            return _pick_memory_aware
        return None

    def _activate(self, task: Task, now: float) -> None:
        p = self.procs[task.proc]
        p.current_task = task
        kind = task.kind
        if kind == TaskKind.TYPE1:
            duration = self._activate_type1(task, now)
        elif kind == TaskKind.TYPE2_MASTER:
            duration = self._activate_type2_master(task, now)
        elif kind == TaskKind.TYPE2_SLAVE:
            if self.fault_plan is None:
                duration = task.flops / self.config.flop_rate
            else:
                duration = task.flops / self.config.flop_rate * self.fault_plan.speed_at(
                    task.proc, now
                )
        elif kind == TaskKind.ROOT_SHARE:
            p.memory.allocate_stack(task.memory_cost, now)
            self._memory_changed(task.proc)
            if self.fault_plan is None:
                duration = task.flops / self.config.flop_rate
            else:
                duration = task.flops / self.config.flop_rate * self.fault_plan.speed_at(
                    task.proc, now
                )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown task kind {task.kind}")
        self.queue.push_task_done(now + duration, task.proc, task)

    def _pull_children_cbs(self, node: int, dest: int, now: float) -> tuple[float, float]:
        """Route the children CB pieces to ``dest``.

        Returns ``(total_entries, comm_time)``: the entries that end up on the
        destination's stack (remote pieces are added to it, local pieces are
        already there) and the longest individual transfer time.
        """
        total = 0.0
        comm_time = 0.0
        moved = 0.0
        for c in self._children[node]:
            for (q, entries) in self.node_state[c].cb_pieces:
                total += entries
                if q != dest:
                    self.procs[q].memory.free_stack(entries, now)
                    self._memory_changed(q)
                    self.procs[dest].memory.allocate_stack(entries, now)
                    moved += entries
                    comm_time = max(comm_time, self.comm.transfer_time(entries))
                    self.message_counts["cb_transfer"] += 1
        if moved > 0:
            self._memory_changed(dest)
        return total, comm_time

    def _enter_subtree_if_needed(self, task: Task, now: float) -> None:
        p = self.procs[task.proc]
        if task.in_subtree >= 0 and p.current_subtree != task.in_subtree:
            p.current_subtree = task.in_subtree
            self._subtree_changed(task.proc, float(self.subtree_peaks[task.in_subtree]))

    def _leave_subtree_if_needed(self, task: Task, now: float) -> None:
        p = self.procs[task.proc]
        if task.in_subtree >= 0 and task.node == task.in_subtree:
            p.current_subtree = -1
            self._subtree_changed(task.proc, 0.0)

    def _note_upper_activation(self, task: Task, now: float) -> None:
        """The Section 5.1 prediction: an upper-layer task got activated."""
        if task.in_subtree >= 0:
            return
        upcoming = self.upcoming_master[task.proc]
        if task.node in upcoming:
            del upcoming[task.node]
            self._prediction_changed(task.proc)

    def _activate_type1(self, task: Task, now: float) -> float:
        node = task.node
        p = self.procs[task.proc]
        self._enter_subtree_if_needed(task, now)
        self._note_upper_activation(task, now)
        self.node_state[node].activated = True
        _, comm_time = self._pull_children_cbs(node, task.proc, now)
        p.memory.allocate_stack(self._front_entries[node], now)
        self._memory_changed(task.proc)
        cfg = self.config
        if self.fault_plan is None:
            duration = (
                comm_time
                + self._assembly_flops[node] / cfg.assembly_rate
                + self._task_flops[node] / cfg.flop_rate
            )
        else:
            duration = comm_time + (
                self._assembly_flops[node] / cfg.assembly_rate
                + self._task_flops[node] / cfg.flop_rate
            ) * self.fault_plan.speed_at(task.proc, now)
        return duration

    def _release_children_cbs(self, node: int, now: float, observer: int | None = None) -> tuple[float, float]:
        """Free the children CB pieces where they live (type-2/3 parents).

        The pieces of a type-2 parent are re-assembled into the *distributed*
        front (master + slaves), so they leave their current owners at
        activation time; the assembly shares are charged to the master and
        the slaves separately by the caller.  Returns the total entries and
        the largest single transfer time.

        ``observer`` (the master doing the assembly) updates its own view of
        the releasing processors immediately — it is the one causing the
        release, so waiting for their memory broadcasts would make the slave
        selection it is about to perform systematically biased against the
        processors that merely stored its children's contribution blocks.
        """
        total = 0.0
        comm_time = 0.0
        for c in self._children[node]:
            st = self.node_state[c]
            for (q, entries) in st.cb_pieces:
                total += entries
                self.procs[q].memory.free_stack(entries, now)
                self._memory_changed(q)
                if observer is not None and q != observer:
                    self.procs[observer].view.add_memory(q, -entries)
                comm_time = max(comm_time, self.comm.transfer_time(entries))
                self.message_counts["cb_transfer"] += 1
            st.cb_pieces = []
        return total, comm_time

    def _candidates_for(self, node: int, master: int) -> list[int]:
        if self._exec_engine != "reference":
            return self._type2_candidates[node]
        candidates = [q for q in self.mapping.candidates.get(node, []) if q != master]
        if not candidates:
            candidates = [q for q in range(self.config.nprocs) if q != master]
        return candidates

    def _activate_type2_master(self, task: Task, now: float) -> float:
        node = task.node
        p = self.procs[task.proc]
        tree = self.tree
        cfg = self.config
        self._enter_subtree_if_needed(task, now)
        self._note_upper_activation(task, now)
        self.node_state[node].activated = True
        total_cb, comm_time = self._release_children_cbs(node, now, observer=task.proc)
        # the master's assembly share: the rows of the children CBs that land
        # in the fully summed part of the front
        npiv = self._npiv[node]
        nfront = self._nfront[node]
        nfront_f = float(max(nfront, 1))
        master_assembly = total_cb * float(npiv) / nfront_f
        task.extra_transient = master_assembly
        p.memory.allocate_stack(self._master_entries[node] + master_assembly, now)
        self._memory_changed(task.proc)

        # ------------------- dynamic slave selection ---------------------- #
        ncb = nfront - npiv
        candidates = self._candidates_for(node, task.proc)
        mem_view = p.view.memory_snapshot()
        eff_view = p.view.effective_memory_snapshot(with_predictions=True)
        load_view = p.view.load.copy()
        ctx = SlaveSelectionContext(
            master_proc=task.proc,
            node=node,
            npiv=npiv,
            nfront=nfront,
            ncb=ncb,
            symmetric=tree.symmetric,
            candidates=candidates,
            memory_view=mem_view,
            effective_memory_view=eff_view,
            load_view=load_view,
            own_load=float(p.load_remaining),
            own_memory=float(p.memory.stack),
            min_rows_per_slave=cfg.min_rows_per_slave,
            max_slaves=cfg.effective_max_slaves(),
        )
        assignment = normalize_row_distribution(self.slave_selector.select(ctx), ncb, candidates)
        self.slave_selections += 1

        state = self.node_state[node]
        state.slaves_pending = len(assignment)
        symmetric = tree.symmetric
        descriptor_delay = self.comm.transfer_time(npiv * 2)  # task descriptor, small
        reservations: list[tuple[int, float]] = []
        for (q, rows) in assignment:
            block = float(type2_slave_block_entries(npiv, nfront, rows, symmetric))
            flops = type2_slave_flops(npiv, nfront, rows, symmetric)
            # the slave also receives its share of the children CB rows to assemble
            slave_assembly = total_cb * float(rows) / nfront_f
            slave_task = Task(
                kind=TaskKind.TYPE2_SLAVE,
                node=node,
                proc=q,
                flops=flops,
                memory_cost=block,
                rows=rows,
                in_subtree=-1,
                master=task.proc,
                extra_transient=slave_assembly,
            )
            delay = descriptor_delay
            if self._fault_msg is not None:
                penalty, retries = self.fault_plan.message_penalty(self._fault_msg)
                if retries:
                    self.message_counts["msg_lost"] += 1
                    self.message_counts["msg_retries"] += retries
                delay = descriptor_delay + penalty
            self.queue.push_message_after(delay, Message(
                kind=MessageKind.SLAVE_TASK, source=task.proc, dest=q, node=node,
                rows=rows, entries=int(block), payload={"task": slave_task},
            ))
            self.message_counts["slave_task"] += 1
            # the master immediately accounts for its own decision (coherence
            # mechanism of Section 4) and tells the others about it
            p.view.add_memory(q, block)
            reservations.append((q, block))
        if assignment and cfg.nprocs > 1:
            self.queue.push_reservation_after(
                self.comm.notification_time(), task.proc, reservations
            )
            self.message_counts["reservation"] += cfg.nprocs - 1

        if self.fault_plan is None:
            duration = (
                comm_time
                + self._assembly_flops[node] / cfg.assembly_rate
                + self._task_flops[node] / cfg.flop_rate
            )
        else:
            duration = comm_time + (
                self._assembly_flops[node] / cfg.assembly_rate
                + self._task_flops[node] / cfg.flop_rate
            ) * self.fault_plan.speed_at(task.proc, now)
        return duration

    # ------------------------------------------------------------------ #
    # completions
    # ------------------------------------------------------------------ #
    def _finish_task(self, proc: int, task: Task, now: float) -> None:
        p = self.procs[proc]
        p.current_task = None
        p.tasks_done += 1
        kind = task.kind
        if kind == TaskKind.TYPE1:
            self._finish_type1(task, now)
        elif kind == TaskKind.TYPE2_MASTER:
            self._finish_type2_master(task, now)
        elif kind == TaskKind.TYPE2_SLAVE:
            self._finish_type2_slave(task, now)
        elif kind == TaskKind.ROOT_SHARE:
            self._finish_root_share(task, now)
        self._try_start(proc)

    def _consume_children_cbs(self, node: int, dest: int, now: float) -> None:
        """Free the children CB pieces (they all sit on ``dest`` by now)."""
        total = 0.0
        for c in self._children[node]:
            st = self.node_state[c]
            total += sum(entries for (_q, entries) in st.cb_pieces)
            st.cb_pieces = []
        if total > 0:
            self.procs[dest].memory.free_stack(total, now)
            self._memory_changed(dest)

    def _finish_type1(self, task: Task, now: float) -> None:
        node = task.node
        p = self.procs[task.proc]
        self._consume_children_cbs(node, task.proc, now)
        p.memory.free_stack(self._front_entries[node], now)
        p.memory.add_factors(self._factor_entries[node], now)
        cb = self._cb_entries[node]
        if cb > 0:
            p.memory.allocate_stack(cb, now)
            self.node_state[node].cb_pieces = [(task.proc, cb)]
        self._memory_changed(task.proc)
        p.load_remaining = max(p.load_remaining - task.flops, 0.0)
        self._load_changed(task.proc)
        self._leave_subtree_if_needed(task, now)
        self._complete_node(node, now)

    def _finish_type2_master(self, task: Task, now: float) -> None:
        node = task.node
        p = self.procs[task.proc]
        master = self._master_entries[node]
        p.memory.free_stack(master + task.extra_transient, now)
        p.memory.add_factors(master, now)
        self._memory_changed(task.proc)
        p.load_remaining = max(p.load_remaining - task.flops, 0.0)
        self._load_changed(task.proc)
        state = self.node_state[node]
        state.master_done = True
        if state.slaves_pending == 0:
            self._complete_node(node, now)

    def _finish_type2_slave(self, task: Task, now: float) -> None:
        node = task.node
        q = task.proc
        p = self.procs[q]
        factor_part = float(type2_slave_factor_entries(
            self._npiv[node], self._nfront[node], task.rows, self.tree.symmetric
        ))
        cb_part = max(task.memory_cost - factor_part, 0.0)
        p.memory.free_stack(factor_part + task.extra_transient, now)
        p.memory.add_factors(factor_part, now)
        self._memory_changed(q)
        p.load_remaining = max(p.load_remaining - task.flops, 0.0)
        self._load_changed(q)
        state = self.node_state[node]
        if cb_part > 0:
            state.cb_pieces.append((q, cb_part))
        state.slaves_pending -= 1
        self.message_counts["slave_done"] += 1
        if state.slaves_pending == 0 and state.master_done:
            self._complete_node(node, now)

    def _finish_root_share(self, task: Task, now: float) -> None:
        node = task.node
        p = self.procs[task.proc]
        share_front = task.memory_cost
        share_factors = self._factor_entries[node] / self.config.nprocs
        p.memory.free_stack(share_front, now)
        p.memory.add_factors(share_factors, now)
        self._memory_changed(task.proc)
        p.load_remaining = max(p.load_remaining - task.flops, 0.0)
        self._load_changed(task.proc)
        state = self.node_state[node]
        state.root_shares_pending -= 1
        if state.root_shares_pending == 0:
            # root CB (normally empty) stays on processor 0 by convention
            cb = self._cb_entries[node]
            if cb > 0:
                self.procs[0].memory.allocate_stack(cb, now)
                self._memory_changed(0)
                state.cb_pieces = [(0, cb)]
            self._complete_node(node, now)

    # ------------------------------------------------------------------ #
    # readiness propagation
    # ------------------------------------------------------------------ #
    def _complete_node(self, node: int, now: float) -> None:
        state = self.node_state[node]
        if state.completed:
            raise RuntimeError(f"node {node} completed twice")
        state.completed = True
        self._finished_nodes += 1
        parent = self._parent[node]
        if parent < 0:
            return
        child_owner = self._owner[node] if self._owner[node] >= 0 else 0
        parent_owner = self._owner[parent]
        if parent_owner < 0:
            parent_owner = 0  # type-3 root: bookkeeping held by processor 0
        if child_owner == parent_owner:
            self._on_child_completed(parent, now)
        else:
            delay = self.comm.notification_time()
            if self._fault_msg is not None:
                penalty, retries = self.fault_plan.message_penalty(self._fault_msg)
                if retries:
                    self.message_counts["msg_lost"] += 1
                    self.message_counts["msg_retries"] += retries
                delay = delay + penalty
            self.queue.push_message_after(
                delay,
                Message(
                    kind=MessageKind.CHILD_COMPLETED, source=child_owner, dest=parent_owner, node=parent,
                ),
            )
            self.message_counts["child_completed"] += 1

    def _on_child_completed(self, parent: int, now: float) -> None:
        state = self.node_state[parent]
        # Section 5.1: the owner of the parent now expects this master task
        if self._subtree_of[parent] < 0 and self._node_type[parent] != _TYPE3:
            owner = self._owner[parent]
            upcoming = self.upcoming_master[owner]
            if parent not in upcoming and not state.activated:
                upcoming[parent] = self._task_memory[parent]
                self._prediction_changed(owner)
        state.children_remaining -= 1
        if state.children_remaining == 0:
            self._node_ready(parent, now)

    def _node_ready(self, node: int, now: float) -> None:
        if self._node_type[node] == _TYPE3:
            self._root_ready(node, now)
            return
        owner = self._owner[node]
        task = self._make_static_task(node)
        p = self.procs[owner]
        p.push_ready_task(task)
        # the workload-based scheduling counts a task as load when it enters the pool
        if task.in_subtree < 0:
            p.load_remaining += task.flops
            self._load_changed(owner)
        self._try_start(owner)

    def _root_ready(self, node: int, now: float) -> None:
        cfg = self.config
        state = self.node_state[node]
        # the 2-D distribution scatters the children CBs: free them where they live
        for c in self._children[node]:
            st = self.node_state[c]
            for (q, entries) in st.cb_pieces:
                self.procs[q].memory.free_stack(entries, now)
                self._memory_changed(q)
            st.cb_pieces = []
        state.root_shares_pending = cfg.nprocs
        share_flops = self._task_flops[node] / cfg.nprocs
        share_front = self._front_entries[node] / cfg.nprocs
        for q in range(cfg.nprocs):
            task = Task(
                kind=TaskKind.ROOT_SHARE,
                node=node,
                proc=q,
                flops=share_flops,
                memory_cost=share_front,
                in_subtree=-1,
            )
            self.procs[q].push_ready_task(task)
            self.procs[q].load_remaining += share_flops
            self._load_changed(q)
            self._try_start(q)
        self.message_counts["root_ready"] += cfg.nprocs - 1

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def _handle_message(self, msg: Message, now: float) -> None:
        if msg.kind == MessageKind.SLAVE_TASK:
            q = msg.dest
            p = self.procs[q]
            task: Task = msg.payload["task"]
            # the slave block (plus its assembly share of the children CBs) is
            # charged upon reception (Section 3: slave tasks are activated as
            # soon as they are received)
            p.memory.allocate_stack(task.memory_cost + task.extra_transient, now)
            self._memory_changed(q)
            p.load_remaining += task.flops
            self._load_changed(q)
            p.queue_slave_task(task)
            self._try_start(q)
        elif msg.kind == MessageKind.CHILD_COMPLETED:
            self._on_child_completed(msg.node, now)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind}")

    def _handle_broadcast(self, kind: str, source: int, value: float) -> None:
        self.views.apply_broadcast(kind, source, value)

    def _handle_reservation(self, source: int, reservations: list[tuple[int, float]]) -> None:
        self.views.apply_reservations(source, reservations)

    # ------------------------------------------------------------------ #
    # main loops
    # ------------------------------------------------------------------ #
    def _run_reference(self) -> None:
        """The historical event loop: dataclass events, string-tag dispatch."""
        while self.queue:
            event = self.queue.pop()
            payload = event.payload
            tag = payload[0]
            if tag == "task_done":
                _, proc, task = payload
                self._finish_task(proc, task, event.time)
            elif tag == "message":
                self._handle_message(payload[1], event.time)
            elif tag == "broadcast":
                _, kind, source, value = payload
                self._handle_broadcast(kind, source, value)
            elif tag == "reservation":
                _, source, reservations = payload
                self._handle_reservation(source, reservations)
            elif tag == "kick":
                self._try_start(payload[1])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown event {tag}")

    # fast-engine event handlers, one per integer tag, uniform (ev) signature
    def _ev_task_done(self, ev: tuple) -> None:
        self._finish_task(ev[3], ev[4], ev[0])

    def _ev_message(self, ev: tuple) -> None:
        self._handle_message(ev[3], ev[0])

    def _ev_broadcast(self, ev: tuple) -> None:
        time, kind, source, value = ev[0], ev[3], ev[4], ev[5]
        # zero-latency coalescing: a storm of broadcasts of the same kind
        # from the same source at one timestamp delivers, value by value,
        # with no observer in between — only the last value can ever be
        # read, so the whole storm collapses into one ViewBank column op.
        heap = self.queue._heap
        while heap:
            nxt = heap[0]
            if nxt[0] != time or nxt[2] != EV_BROADCAST or nxt[3] != kind or nxt[4] != source:
                break
            value = nxt[5]
            heapq.heappop(heap)
        self.views.apply_broadcast_kind(kind, source, value)

    def _ev_reservation(self, ev: tuple) -> None:
        self.views.apply_reservations(ev[3], ev[4])

    def _ev_kick(self, ev: tuple) -> None:
        self._try_start(ev[3])

    def _run_fast(self) -> None:
        """The flat event loop: tuple events, handler table indexed by tag id."""
        dispatch = [None] * 5
        dispatch[EV_TASK_DONE] = self._ev_task_done
        dispatch[EV_MESSAGE] = self._ev_message
        dispatch[EV_BROADCAST] = self._ev_broadcast
        dispatch[EV_RESERVATION] = self._ev_reservation
        dispatch[EV_KICK] = self._ev_kick
        dispatch = tuple(dispatch)
        queue = self.queue
        heap = queue._heap
        pop = heapq.heappop
        while heap:
            ev = pop(heap)
            queue._now = ev[0]
            dispatch[ev[2]](ev)

    def run(self) -> SimulationResult:
        """Run the simulation to completion and return the metrics."""
        if self._ran:
            raise RuntimeError("a FactorizationSimulator instance can only run once")
        self._ran = True
        exec_engine = self._exec_engine
        if exec_engine == "jit":
            self._precompute_geometry()
            from repro.runtime.engine_jit import run_jit

            return run_jit(self)
        if exec_engine == "soa":
            self._precompute_geometry()
            from repro.runtime.soa import run_soa

            return run_soa(self)
        self._setup()
        if exec_engine == "flat":
            self._run_fast()
        else:
            self._run_reference()

        if self._finished_nodes != self.tree.nnodes:
            unfinished = [i for i, s in enumerate(self.node_state) if not s.completed]
            raise RuntimeError(
                f"simulation deadlocked: {len(unfinished)} nodes never completed "
                f"(first few: {unfinished[:5]})"
            )

        per_peak = np.array([p.memory.peak_stack for p in self.procs], dtype=np.float64)
        per_factors = np.array([p.memory.factors for p in self.procs], dtype=np.float64)
        per_tasks = np.array([p.tasks_done for p in self.procs], dtype=np.float64)
        trace = SimulationTrace.from_processors(self.procs) if self.config.track_traces else None
        return SimulationResult(
            nprocs=self.config.nprocs,
            per_proc_peak_stack=per_peak,
            per_proc_factor_entries=per_factors,
            per_proc_tasks=per_tasks,
            total_time=float(self.queue.now),
            message_counts=dict(self.message_counts),
            slave_selections=self.slave_selections,
            nodes=self.tree.nnodes,
            total_factor_entries=float(per_factors.sum()),
            trace=trace,
            strategy_name=self.strategy_name,
        )


#: module-level int mirrors of the NodeType members compared on the hot path
_TYPE2 = int(NodeType.TYPE2)
_TYPE3 = int(NodeType.TYPE3)


def _pick_memory_aware(p: ProcessorState) -> int:
    """Inlined :class:`MemoryAwareTaskSelector.select` over the live pool.

    Bit-identical to building a :class:`TaskSelectionContext` from ``p`` and
    calling the selector (asserted by ``tests/test_engine_identity.py``).
    """
    pool = p.pool
    top = len(pool) - 1
    current_subtree = p.current_subtree
    if current_subtree >= 0 and pool[top].in_subtree == current_subtree:
        return top
    current = float(p.memory.stack) + (
        p.current_subtree_peak if current_subtree >= 0 else 0.0
    )
    observed = p.observed_peak
    for index in range(top, -1, -1):
        task = pool[index]
        if task.memory_cost + current <= observed:
            return index
        if task.in_subtree >= 0:
            return index
    return top
