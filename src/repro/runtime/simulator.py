"""Discrete-event simulator of the parallel multifrontal factorization.

This is the reproduction's stand-in for "running MUMPS on 32 processors of
the IBM SP": the numerical kernels are replaced by their flop counts, the
network by a latency/bandwidth model, and the memory of every processor is
accounted in entries, exactly the quantity the paper's tables report.  The
scheduling decision points — slave selection for type-2 nodes, task selection
in the local pools — are delegated to strategy objects from
:mod:`repro.scheduling`, so the original MUMPS behaviour and the paper's
memory-based strategies run on an identical substrate and their stack peaks
can be compared head to head.

Faithfulness notes (documented simplifications):

* contribution blocks produced by the children of a node are routed to the
  processor that owns the node's master and freed there once the node's
  elimination finishes; in MUMPS the pieces go to the individual slaves of a
  type-2 parent, but the dominant memory terms (fronts, CB stacks, master
  blocks) are unaffected;
* a slave block's memory is charged to the slave as soon as the slave task
  *arrives* (the paper: slave tasks are activated as soon as they are
  received), even if the processor is still busy with another task;
* the type-3 root is modelled as an even split of its front and flops over
  all processors (ScaLAPACK 2-D block-cyclic distribution).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.flops import (
    type2_slave_block_entries,
    type2_slave_factor_entries,
    type2_slave_flops,
)
from repro.analysis.memory import subtree_stack_peaks
from repro.mapping.layers import NodeType, StaticMapping, compute_mapping
from repro.runtime.config import SimulationConfig
from repro.runtime.events import EventQueue
from repro.runtime.loadview import ViewBank
from repro.runtime.messages import CommunicationModel, Message, MessageKind
from repro.runtime.processor import ProcessorState
from repro.runtime.tasks import Task, TaskKind
from repro.runtime.trace import SimulationTrace
from repro.scheduling.base import (
    SlaveSelectionContext,
    TaskSelectionContext,
    SlaveSelector,
    TaskSelector,
    normalize_row_distribution,
)
from repro.symbolic.liu_order import order_children_for_memory

__all__ = ["FactorizationSimulator", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulated parallel factorization."""

    nprocs: int
    per_proc_peak_stack: np.ndarray
    per_proc_factor_entries: np.ndarray
    per_proc_tasks: np.ndarray
    total_time: float
    message_counts: dict[str, int]
    slave_selections: int
    nodes: int
    total_factor_entries: float
    trace: Optional[SimulationTrace] = None
    strategy_name: str = ""

    @property
    def max_peak_stack(self) -> float:
        """Maximum over the processors of the stack-memory peak (the paper's metric)."""
        return float(self.per_proc_peak_stack.max()) if self.per_proc_peak_stack.size else 0.0

    @property
    def avg_peak_stack(self) -> float:
        return float(self.per_proc_peak_stack.mean()) if self.per_proc_peak_stack.size else 0.0

    @property
    def sum_peak_stack(self) -> float:
        return float(self.per_proc_peak_stack.sum()) if self.per_proc_peak_stack.size else 0.0

    @property
    def peak_imbalance(self) -> float:
        """Max over avg of the per-processor peaks (1.0 = perfectly balanced)."""
        avg = self.avg_peak_stack
        return self.max_peak_stack / avg if avg > 0 else 1.0

    def summary(self) -> dict[str, float]:
        return {
            "max_peak_stack": self.max_peak_stack,
            "avg_peak_stack": self.avg_peak_stack,
            "sum_peak_stack": self.sum_peak_stack,
            "peak_imbalance": self.peak_imbalance,
            "total_time": self.total_time,
            "total_factor_entries": self.total_factor_entries,
            "messages": float(sum(self.message_counts.values())),
        }


class _NodeState:
    """Book-keeping of one assembly-tree node during the simulation."""

    __slots__ = (
        "children_remaining",
        "completed",
        "master_done",
        "slaves_pending",
        "cb_pieces",
        "activated",
        "root_shares_pending",
    )

    def __init__(self, nchildren: int) -> None:
        self.children_remaining = nchildren
        self.completed = False
        self.master_done = False
        self.slaves_pending = 0
        self.cb_pieces: list[tuple[int, float]] = []
        self.activated = False
        self.root_shares_pending = 0


class FactorizationSimulator:
    """Simulate one parallel multifrontal factorization of an assembly tree."""

    def __init__(
        self,
        tree,
        *,
        config: SimulationConfig | None = None,
        mapping: StaticMapping | None = None,
        slave_selector: SlaveSelector,
        task_selector: TaskSelector,
        strategy_name: str = "",
        views: ViewBank | None = None,
    ) -> None:
        self.tree = tree
        self.config = config if config is not None else SimulationConfig()
        if mapping is None:
            mapping = compute_mapping(
                tree,
                self.config.nprocs,
                type2_front_threshold=self.config.type2_front_threshold,
                type2_cb_threshold=self.config.type2_cb_threshold,
                type3_front_threshold=self.config.type3_front_threshold,
                imbalance_tolerance=self.config.imbalance_tolerance,
                min_subtrees_per_proc=self.config.min_subtrees_per_proc,
                subtree_cost=self.config.subtree_cost,
            )
        if mapping.nprocs != self.config.nprocs:
            raise ValueError("mapping.nprocs does not match config.nprocs")
        self.mapping = mapping
        self.slave_selector = slave_selector
        self.task_selector = task_selector
        self.strategy_name = strategy_name

        self.comm = CommunicationModel(
            latency=self.config.latency,
            bandwidth_entries=self.config.bandwidth_entries,
            small_message_latency=self.config.memory_message_latency,
        )
        self.queue = EventQueue()
        # all system views live in one bank: broadcast and reservation events
        # touch every processor at once, which the bank applies as single
        # numpy column updates instead of per-processor loops
        if views is None:
            views = ViewBank(self.config.nprocs)
        if views.nprocs != self.config.nprocs:
            raise ValueError("views.nprocs does not match config.nprocs")
        views.reset()  # a reused bank must not leak a previous run's beliefs
        self.views = views
        self.procs = [
            ProcessorState(proc=p, nprocs=self.config.nprocs, view=views.view(p))
            for p in range(self.config.nprocs)
        ]
        for p in self.procs:
            p.memory.track_trace = self.config.track_traces
        self.node_state = [
            _NodeState(len(tree.children(i))) for i in range(tree.nnodes)
        ]
        self.subtree_peaks = subtree_stack_peaks(tree)
        self.message_counts: dict[str, int] = defaultdict(int)
        self.slave_selections = 0
        # upper-layer tasks owned by a processor whose activation is imminent
        # (>= 1 child completed) — drives the Section 5.1 master prediction
        self.upcoming_master: list[dict[int, float]] = [dict() for _ in range(self.config.nprocs)]
        self._finished_nodes = 0
        self._ran = False

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #
    def _node_flops(self, node: int) -> float:
        if self.mapping.node_type[node] == int(NodeType.TYPE2):
            return self.tree.type2_master_flops(node)
        return self.tree.factor_flops(node)

    def _activation_memory(self, node: int) -> float:
        """Entries added to the owner's stack when the node's task is activated."""
        kind = int(self.mapping.node_type[node])
        if kind == int(NodeType.TYPE2):
            return float(self.tree.master_entries(node))
        if kind == int(NodeType.TYPE3):
            return float(self.tree.front_entries(node)) / self.config.nprocs
        return float(self.tree.front_entries(node))

    def _make_static_task(self, node: int) -> Task:
        kind = int(self.mapping.node_type[node])
        in_subtree = int(self.mapping.subtree_of[node])
        owner = int(self.mapping.owner[node])
        if kind == int(NodeType.TYPE2):
            task_kind = TaskKind.TYPE2_MASTER
        else:
            task_kind = TaskKind.TYPE1
        return Task(
            kind=task_kind,
            node=node,
            proc=owner,
            flops=self._node_flops(node),
            memory_cost=self._activation_memory(node),
            in_subtree=in_subtree,
        )

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def _initial_pool_order(self, proc: int) -> list[int]:
        """Leaf nodes assigned to ``proc`` in the order they should be processed.

        Leaves are grouped per subtree and, inside each subtree, listed in the
        order a depth-first traversal with Liu's child ordering would reach
        them — the pool initialisation described in Section 5.2.
        """
        liu = order_children_for_memory(self.tree)
        my_subtrees = [
            r for r in self.mapping.subtree_roots if int(self.mapping.owner[r]) == proc
        ]
        order: list[int] = []
        for r in sorted(my_subtrees):
            stack = [(r, 0)]
            # DFS following Liu order; collect the leaves in visit order
            visit: list[int] = []
            while stack:
                node, idx = stack.pop()
                children = liu[node]
                if not children:
                    visit.append(node)
                    continue
                if idx < len(children):
                    stack.append((node, idx + 1))
                    stack.append((children[idx], 0))
            order.extend(visit)
        # upper-layer leaves owned by this processor (rare but possible)
        for i in self.tree.leaves():
            if (
                int(self.mapping.subtree_of[i]) < 0
                and int(self.mapping.owner[i]) == proc
                and int(self.mapping.node_type[i]) != int(NodeType.TYPE3)
            ):
                order.append(i)
        return order

    def _setup(self) -> None:
        tree = self.tree
        cfg = self.config
        # initial workloads: cost of the statically assigned subtrees
        initial_load = np.zeros(cfg.nprocs, dtype=np.float64)
        for r in self.mapping.subtree_roots:
            initial_load[int(self.mapping.owner[r])] += tree.subtree_flops(r)
        for p in self.procs:
            p.load_remaining = float(initial_load[p.proc])
            # everyone starts with the same (exact) static knowledge of the loads
            for q in range(cfg.nprocs):
                p.view.set_load(q, float(initial_load[q]))

        # initial pools: the leaves, deepest-first subtree by subtree
        for p in self.procs:
            processing_order = self._initial_pool_order(p.proc)
            for node in reversed(processing_order):
                p.push_ready_task(self._make_static_task(node))

        # a single-node tree (or type-3 leaves) must still start somewhere
        for i in tree.leaves():
            if int(self.mapping.node_type[i]) == int(NodeType.TYPE3):
                self._root_ready(i, 0.0)

        for p in range(cfg.nprocs):
            self.queue.push(0.0, ("kick", p))

    # ------------------------------------------------------------------ #
    # broadcasts and views
    # ------------------------------------------------------------------ #
    def _broadcast(self, kind: str, source: int, value: float, delay: float | None = None) -> None:
        if self.config.nprocs <= 1:
            return
        if delay is None:
            delay = self.comm.notification_time()
        self.queue.push_after(delay, ("broadcast", kind, source, value))
        self.message_counts[kind] += self.config.nprocs - 1

    def _memory_changed(self, proc: int) -> None:
        p = self.procs[proc]
        p.note_observed_peak()
        value = float(p.memory.stack)
        if value != p.last_broadcast_memory:
            p.last_broadcast_memory = value
            self._broadcast("memory", proc, value)
        # a processor always knows its own memory exactly
        p.view.set_memory(proc, value)

    def _load_changed(self, proc: int) -> None:
        p = self.procs[proc]
        value = float(p.load_remaining)
        if value != p.last_broadcast_load:
            p.last_broadcast_load = value
            self._broadcast("load", proc, value)
        p.view.set_load(proc, value)

    def _prediction_changed(self, proc: int) -> None:
        p = self.procs[proc]
        value = max(self.upcoming_master[proc].values(), default=0.0)
        if value != p.last_broadcast_prediction:
            p.last_broadcast_prediction = value
            self._broadcast("prediction", proc, value)
        p.view.set_predicted_master(proc, value)

    def _subtree_changed(self, proc: int, value: float) -> None:
        p = self.procs[proc]
        p.current_subtree_peak = value
        p.view.set_subtree_peak(proc, value)
        self._broadcast("subtree", proc, value)

    # ------------------------------------------------------------------ #
    # task activation / completion
    # ------------------------------------------------------------------ #
    def _try_start(self, proc: int) -> None:
        p = self.procs[proc]
        if p.current_task is not None:
            return
        now = self.queue.now
        task: Task | None = None
        if p.slave_queue:
            task = p.slave_queue.popleft()
        elif p.pool:
            ctx = TaskSelectionContext(
                proc=proc,
                pool=list(p.pool),
                current_memory=float(p.memory.stack),
                current_subtree=p.current_subtree,
                current_subtree_peak=p.current_subtree_peak,
                observed_peak=p.observed_peak,
            )
            index = int(self.task_selector.select(ctx))
            if not 0 <= index < len(p.pool):
                raise ValueError(
                    f"task selector {self.task_selector!r} returned invalid index {index}"
                )
            task = p.pop_task(index)
        if task is None:
            return
        self._activate(task, now)

    def _activate(self, task: Task, now: float) -> None:
        p = self.procs[task.proc]
        p.current_task = task
        if task.kind == TaskKind.TYPE1:
            duration = self._activate_type1(task, now)
        elif task.kind == TaskKind.TYPE2_MASTER:
            duration = self._activate_type2_master(task, now)
        elif task.kind == TaskKind.TYPE2_SLAVE:
            duration = task.flops / self.config.flop_rate
        elif task.kind == TaskKind.ROOT_SHARE:
            p.memory.allocate_stack(task.memory_cost, now)
            self._memory_changed(task.proc)
            duration = task.flops / self.config.flop_rate
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown task kind {task.kind}")
        self.queue.push(now + duration, ("task_done", task.proc, task))

    def _pull_children_cbs(self, node: int, dest: int, now: float) -> tuple[float, float]:
        """Route the children CB pieces to ``dest``.

        Returns ``(total_entries, comm_time)``: the entries that end up on the
        destination's stack (remote pieces are added to it, local pieces are
        already there) and the longest individual transfer time.
        """
        total = 0.0
        comm_time = 0.0
        moved = 0.0
        for c in self.tree.children(node):
            for (q, entries) in self.node_state[c].cb_pieces:
                total += entries
                if q != dest:
                    self.procs[q].memory.free_stack(entries, now)
                    self._memory_changed(q)
                    self.procs[dest].memory.allocate_stack(entries, now)
                    moved += entries
                    comm_time = max(comm_time, self.comm.transfer_time(entries))
                    self.message_counts["cb_transfer"] += 1
        if moved > 0:
            self._memory_changed(dest)
        return total, comm_time

    def _enter_subtree_if_needed(self, task: Task, now: float) -> None:
        p = self.procs[task.proc]
        if task.in_subtree >= 0 and p.current_subtree != task.in_subtree:
            p.current_subtree = task.in_subtree
            self._subtree_changed(task.proc, float(self.subtree_peaks[task.in_subtree]))

    def _leave_subtree_if_needed(self, task: Task, now: float) -> None:
        p = self.procs[task.proc]
        if task.in_subtree >= 0 and task.node == task.in_subtree:
            p.current_subtree = -1
            self._subtree_changed(task.proc, 0.0)

    def _note_upper_activation(self, task: Task, now: float) -> None:
        """The Section 5.1 prediction: an upper-layer task got activated."""
        if task.in_subtree >= 0:
            return
        upcoming = self.upcoming_master[task.proc]
        if task.node in upcoming:
            del upcoming[task.node]
            self._prediction_changed(task.proc)

    def _activate_type1(self, task: Task, now: float) -> float:
        node = task.node
        p = self.procs[task.proc]
        self._enter_subtree_if_needed(task, now)
        self._note_upper_activation(task, now)
        self.node_state[node].activated = True
        _, comm_time = self._pull_children_cbs(node, task.proc, now)
        p.memory.allocate_stack(float(self.tree.front_entries(node)), now)
        self._memory_changed(task.proc)
        duration = (
            comm_time
            + self.tree.assembly_flops(node) / self.config.assembly_rate
            + self.tree.factor_flops(node) / self.config.flop_rate
        )
        return duration

    def _release_children_cbs(self, node: int, now: float, observer: int | None = None) -> tuple[float, float]:
        """Free the children CB pieces where they live (type-2/3 parents).

        The pieces of a type-2 parent are re-assembled into the *distributed*
        front (master + slaves), so they leave their current owners at
        activation time; the assembly shares are charged to the master and
        the slaves separately by the caller.  Returns the total entries and
        the largest single transfer time.

        ``observer`` (the master doing the assembly) updates its own view of
        the releasing processors immediately — it is the one causing the
        release, so waiting for their memory broadcasts would make the slave
        selection it is about to perform systematically biased against the
        processors that merely stored its children's contribution blocks.
        """
        total = 0.0
        comm_time = 0.0
        for c in self.tree.children(node):
            st = self.node_state[c]
            for (q, entries) in st.cb_pieces:
                total += entries
                self.procs[q].memory.free_stack(entries, now)
                self._memory_changed(q)
                if observer is not None and q != observer:
                    self.procs[observer].view.add_memory(q, -entries)
                comm_time = max(comm_time, self.comm.transfer_time(entries))
                self.message_counts["cb_transfer"] += 1
            st.cb_pieces = []
        return total, comm_time

    def _activate_type2_master(self, task: Task, now: float) -> float:
        node = task.node
        p = self.procs[task.proc]
        tree = self.tree
        cfg = self.config
        self._enter_subtree_if_needed(task, now)
        self._note_upper_activation(task, now)
        self.node_state[node].activated = True
        total_cb, comm_time = self._release_children_cbs(node, now, observer=task.proc)
        # the master's assembly share: the rows of the children CBs that land
        # in the fully summed part of the front
        nfront_f = float(max(int(tree.nfront[node]), 1))
        master_assembly = total_cb * float(tree.npiv[node]) / nfront_f
        task.extra_transient = master_assembly
        p.memory.allocate_stack(float(tree.master_entries(node)) + master_assembly, now)
        self._memory_changed(task.proc)

        # ------------------- dynamic slave selection ---------------------- #
        npiv = int(tree.npiv[node])
        nfront = int(tree.nfront[node])
        ncb = nfront - npiv
        candidates = [q for q in self.mapping.candidates.get(node, []) if q != task.proc]
        if not candidates:
            candidates = [q for q in range(cfg.nprocs) if q != task.proc]
        mem_view = p.view.memory_snapshot()
        eff_view = p.view.effective_memory_snapshot(with_predictions=True)
        load_view = p.view.load.copy()
        ctx = SlaveSelectionContext(
            master_proc=task.proc,
            node=node,
            npiv=npiv,
            nfront=nfront,
            ncb=ncb,
            symmetric=tree.symmetric,
            candidates=candidates,
            memory_view=mem_view,
            effective_memory_view=eff_view,
            load_view=load_view,
            own_load=float(p.load_remaining),
            own_memory=float(p.memory.stack),
            min_rows_per_slave=cfg.min_rows_per_slave,
            max_slaves=cfg.effective_max_slaves(),
        )
        assignment = normalize_row_distribution(self.slave_selector.select(ctx), ncb, candidates)
        self.slave_selections += 1

        state = self.node_state[node]
        state.slaves_pending = len(assignment)
        for (q, rows) in assignment:
            block = float(type2_slave_block_entries(npiv, nfront, rows, tree.symmetric))
            flops = type2_slave_flops(npiv, nfront, rows, tree.symmetric)
            # the slave also receives its share of the children CB rows to assemble
            slave_assembly = total_cb * float(rows) / nfront_f
            slave_task = Task(
                kind=TaskKind.TYPE2_SLAVE,
                node=node,
                proc=q,
                flops=flops,
                memory_cost=block,
                rows=rows,
                in_subtree=-1,
                master=task.proc,
                extra_transient=slave_assembly,
            )
            delay = self.comm.transfer_time(npiv * 2)  # task descriptor, small
            self.queue.push_after(delay, ("message", Message(
                kind=MessageKind.SLAVE_TASK, source=task.proc, dest=q, node=node,
                rows=rows, entries=int(block), payload={"task": slave_task},
            )))
            self.message_counts["slave_task"] += 1
            # the master immediately accounts for its own decision (coherence
            # mechanism of Section 4) and tells the others about it
            p.view.add_memory(q, block)
        if assignment and cfg.nprocs > 1:
            self.queue.push_after(
                self.comm.notification_time(),
                ("reservation", task.proc, [(q, float(type2_slave_block_entries(npiv, nfront, rows, tree.symmetric))) for q, rows in assignment]),
            )
            self.message_counts["reservation"] += cfg.nprocs - 1

        duration = (
            comm_time
            + tree.assembly_flops(node) / cfg.assembly_rate
            + tree.type2_master_flops(node) / cfg.flop_rate
        )
        return duration

    # ------------------------------------------------------------------ #
    # completions
    # ------------------------------------------------------------------ #
    def _finish_task(self, proc: int, task: Task, now: float) -> None:
        p = self.procs[proc]
        p.current_task = None
        p.tasks_done += 1
        if task.kind == TaskKind.TYPE1:
            self._finish_type1(task, now)
        elif task.kind == TaskKind.TYPE2_MASTER:
            self._finish_type2_master(task, now)
        elif task.kind == TaskKind.TYPE2_SLAVE:
            self._finish_type2_slave(task, now)
        elif task.kind == TaskKind.ROOT_SHARE:
            self._finish_root_share(task, now)
        self._try_start(proc)

    def _consume_children_cbs(self, node: int, dest: int, now: float) -> None:
        """Free the children CB pieces (they all sit on ``dest`` by now)."""
        total = 0.0
        for c in self.tree.children(node):
            st = self.node_state[c]
            total += sum(entries for (_q, entries) in st.cb_pieces)
            st.cb_pieces = []
        if total > 0:
            self.procs[dest].memory.free_stack(total, now)
            self._memory_changed(dest)

    def _finish_type1(self, task: Task, now: float) -> None:
        node = task.node
        p = self.procs[task.proc]
        tree = self.tree
        self._consume_children_cbs(node, task.proc, now)
        p.memory.free_stack(float(tree.front_entries(node)), now)
        p.memory.add_factors(float(tree.factor_entries(node)), now)
        cb = float(tree.cb_entries(node))
        if cb > 0:
            p.memory.allocate_stack(cb, now)
            self.node_state[node].cb_pieces = [(task.proc, cb)]
        self._memory_changed(task.proc)
        p.load_remaining = max(p.load_remaining - task.flops, 0.0)
        self._load_changed(task.proc)
        self._leave_subtree_if_needed(task, now)
        self._complete_node(node, now)

    def _finish_type2_master(self, task: Task, now: float) -> None:
        node = task.node
        p = self.procs[task.proc]
        tree = self.tree
        master = float(tree.master_entries(node))
        p.memory.free_stack(master + task.extra_transient, now)
        p.memory.add_factors(master, now)
        self._memory_changed(task.proc)
        p.load_remaining = max(p.load_remaining - task.flops, 0.0)
        self._load_changed(task.proc)
        state = self.node_state[node]
        state.master_done = True
        if state.slaves_pending == 0:
            self._complete_node(node, now)

    def _finish_type2_slave(self, task: Task, now: float) -> None:
        node = task.node
        q = task.proc
        p = self.procs[q]
        tree = self.tree
        npiv = int(tree.npiv[node])
        nfront = int(tree.nfront[node])
        factor_part = float(type2_slave_factor_entries(npiv, nfront, task.rows, tree.symmetric))
        cb_part = max(task.memory_cost - factor_part, 0.0)
        p.memory.free_stack(factor_part + task.extra_transient, now)
        p.memory.add_factors(factor_part, now)
        self._memory_changed(q)
        p.load_remaining = max(p.load_remaining - task.flops, 0.0)
        self._load_changed(q)
        state = self.node_state[node]
        if cb_part > 0:
            state.cb_pieces.append((q, cb_part))
        state.slaves_pending -= 1
        self.message_counts["slave_done"] += 1
        if state.slaves_pending == 0 and state.master_done:
            self._complete_node(node, now)

    def _finish_root_share(self, task: Task, now: float) -> None:
        node = task.node
        p = self.procs[task.proc]
        tree = self.tree
        share_front = task.memory_cost
        share_factors = float(tree.factor_entries(node)) / self.config.nprocs
        p.memory.free_stack(share_front, now)
        p.memory.add_factors(share_factors, now)
        self._memory_changed(task.proc)
        p.load_remaining = max(p.load_remaining - task.flops, 0.0)
        self._load_changed(task.proc)
        state = self.node_state[node]
        state.root_shares_pending -= 1
        if state.root_shares_pending == 0:
            # root CB (normally empty) stays on processor 0 by convention
            cb = float(tree.cb_entries(node))
            if cb > 0:
                self.procs[0].memory.allocate_stack(cb, now)
                self._memory_changed(0)
                state.cb_pieces = [(0, cb)]
            self._complete_node(node, now)

    # ------------------------------------------------------------------ #
    # readiness propagation
    # ------------------------------------------------------------------ #
    def _complete_node(self, node: int, now: float) -> None:
        state = self.node_state[node]
        if state.completed:
            raise RuntimeError(f"node {node} completed twice")
        state.completed = True
        self._finished_nodes += 1
        parent = int(self.tree.parent[node])
        if parent < 0:
            return
        child_owner = int(self.mapping.owner[node]) if int(self.mapping.owner[node]) >= 0 else 0
        parent_owner = int(self.mapping.owner[parent])
        if parent_owner < 0:
            parent_owner = 0  # type-3 root: bookkeeping held by processor 0
        if child_owner == parent_owner:
            self._on_child_completed(parent, now)
        else:
            self.queue.push_after(
                self.comm.notification_time(),
                ("message", Message(
                    kind=MessageKind.CHILD_COMPLETED, source=child_owner, dest=parent_owner, node=parent,
                )),
            )
            self.message_counts["child_completed"] += 1

    def _on_child_completed(self, parent: int, now: float) -> None:
        state = self.node_state[parent]
        # Section 5.1: the owner of the parent now expects this master task
        if int(self.mapping.subtree_of[parent]) < 0 and int(self.mapping.node_type[parent]) != int(NodeType.TYPE3):
            owner = int(self.mapping.owner[parent])
            upcoming = self.upcoming_master[owner]
            if parent not in upcoming and not state.activated:
                upcoming[parent] = self._activation_memory(parent)
                self._prediction_changed(owner)
        state.children_remaining -= 1
        if state.children_remaining == 0:
            self._node_ready(parent, now)

    def _node_ready(self, node: int, now: float) -> None:
        kind = int(self.mapping.node_type[node])
        if kind == int(NodeType.TYPE3):
            self._root_ready(node, now)
            return
        owner = int(self.mapping.owner[node])
        task = self._make_static_task(node)
        p = self.procs[owner]
        p.push_ready_task(task)
        # the workload-based scheduling counts a task as load when it enters the pool
        if task.in_subtree < 0:
            p.load_remaining += task.flops
            self._load_changed(owner)
        self._try_start(owner)

    def _root_ready(self, node: int, now: float) -> None:
        tree = self.tree
        cfg = self.config
        state = self.node_state[node]
        # the 2-D distribution scatters the children CBs: free them where they live
        for c in tree.children(node):
            st = self.node_state[c]
            for (q, entries) in st.cb_pieces:
                self.procs[q].memory.free_stack(entries, now)
                self._memory_changed(q)
            st.cb_pieces = []
        state.root_shares_pending = cfg.nprocs
        share_flops = tree.factor_flops(node) / cfg.nprocs
        share_front = float(tree.front_entries(node)) / cfg.nprocs
        for q in range(cfg.nprocs):
            task = Task(
                kind=TaskKind.ROOT_SHARE,
                node=node,
                proc=q,
                flops=share_flops,
                memory_cost=share_front,
                in_subtree=-1,
            )
            self.procs[q].push_ready_task(task)
            self.procs[q].load_remaining += share_flops
            self._load_changed(q)
            self._try_start(q)
        self.message_counts["root_ready"] += cfg.nprocs - 1

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def _handle_message(self, msg: Message, now: float) -> None:
        if msg.kind == MessageKind.SLAVE_TASK:
            q = msg.dest
            p = self.procs[q]
            task: Task = msg.payload["task"]
            # the slave block (plus its assembly share of the children CBs) is
            # charged upon reception (Section 3: slave tasks are activated as
            # soon as they are received)
            p.memory.allocate_stack(task.memory_cost + task.extra_transient, now)
            self._memory_changed(q)
            p.load_remaining += task.flops
            self._load_changed(q)
            p.queue_slave_task(task)
            self._try_start(q)
        elif msg.kind == MessageKind.CHILD_COMPLETED:
            self._on_child_completed(msg.node, now)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind}")

    def _handle_broadcast(self, kind: str, source: int, value: float) -> None:
        self.views.apply_broadcast(kind, source, value)

    def _handle_reservation(self, source: int, reservations: list[tuple[int, float]]) -> None:
        self.views.apply_reservations(source, reservations)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run the simulation to completion and return the metrics."""
        if self._ran:
            raise RuntimeError("a FactorizationSimulator instance can only run once")
        self._ran = True
        self._setup()
        while self.queue:
            event = self.queue.pop()
            payload = event.payload
            tag = payload[0]
            if tag == "task_done":
                _, proc, task = payload
                self._finish_task(proc, task, event.time)
            elif tag == "message":
                self._handle_message(payload[1], event.time)
            elif tag == "broadcast":
                _, kind, source, value = payload
                self._handle_broadcast(kind, source, value)
            elif tag == "reservation":
                _, source, reservations = payload
                self._handle_reservation(source, reservations)
            elif tag == "kick":
                self._try_start(payload[1])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown event {tag}")

        if self._finished_nodes != self.tree.nnodes:
            unfinished = [i for i, s in enumerate(self.node_state) if not s.completed]
            raise RuntimeError(
                f"simulation deadlocked: {len(unfinished)} nodes never completed "
                f"(first few: {unfinished[:5]})"
            )

        per_peak = np.array([p.memory.peak_stack for p in self.procs], dtype=np.float64)
        per_factors = np.array([p.memory.factors for p in self.procs], dtype=np.float64)
        per_tasks = np.array([p.tasks_done for p in self.procs], dtype=np.float64)
        trace = SimulationTrace.from_processors(self.procs) if self.config.track_traces else None
        return SimulationResult(
            nprocs=self.config.nprocs,
            per_proc_peak_stack=per_peak,
            per_proc_factor_entries=per_factors,
            per_proc_tasks=per_tasks,
            total_time=float(self.queue.now),
            message_counts=dict(self.message_counts),
            slave_selections=self.slave_selections,
            nodes=self.tree.nnodes,
            total_factor_entries=float(per_factors.sum()),
            trace=trace,
            strategy_name=self.strategy_name,
        )
