"""Per-processor memory accounting.

Mirrors the three storage areas recalled in Section 2 of the paper: the
factors (monotonically growing), and the working storage made of the stack of
contribution blocks plus the active frontal matrices and communication
buffers.  The scheduling strategies act on the *working* area — the paper's
"stack memory" — and every table reports its per-processor peak, so that is
the quantity tracked with full history here.

The history is recorded into a :class:`~repro.runtime.trace.TraceBuffer`
(preallocated numpy columns) instead of three Python lists, so tracing large
runs costs scalar array stores rather than object appends; the
``trace_times``/``trace_stack``/``trace_factors`` properties stay
array-like (``len``, indexing, numpy conversion) for the figure harnesses.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.trace import TraceBuffer

__all__ = ["ProcessorMemory"]

#: shared empty history returned while tracing is disabled
_EMPTY = np.empty(0, dtype=np.float64)


class ProcessorMemory:
    """Memory state of one simulated processor (all values in entries)."""

    __slots__ = ("proc", "stack", "factors", "peak_stack", "peak_time", "_trace")

    def __init__(
        self,
        proc: int,
        stack: float = 0.0,
        factors: float = 0.0,
        peak_stack: float = 0.0,
        peak_time: float = 0.0,
        track_trace: bool = False,
    ) -> None:
        self.proc = proc
        self.stack = stack
        self.factors = factors
        self.peak_stack = peak_stack
        self.peak_time = peak_time
        self._trace = TraceBuffer() if track_trace else None

    # ------------------------------------------------------------------ #
    # trace access (history recording is toggled by assigning track_trace)
    # ------------------------------------------------------------------ #
    @property
    def track_trace(self) -> bool:
        return self._trace is not None

    @track_trace.setter
    def track_trace(self, enabled: bool) -> None:
        if enabled:
            if self._trace is None:
                self._trace = TraceBuffer()
        else:
            self._trace = None

    @property
    def trace_times(self) -> np.ndarray:
        return self._trace.times if self._trace is not None else _EMPTY

    @property
    def trace_stack(self) -> np.ndarray:
        return self._trace.stack if self._trace is not None else _EMPTY

    @property
    def trace_factors(self) -> np.ndarray:
        return self._trace.factors if self._trace is not None else _EMPTY

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def _after_change(self, now: float) -> None:
        if self.stack < -1e-6:
            raise RuntimeError(
                f"processor {self.proc}: stack memory became negative ({self.stack:.1f} entries)"
            )
        if self.stack > self.peak_stack:
            self.peak_stack = self.stack
            self.peak_time = now
        trace = self._trace
        if trace is not None:
            trace.append(now, self.stack, self.factors)

    def allocate_stack(self, entries: float, now: float) -> None:
        """Grow the working area (front allocation, CB push, receive buffer)."""
        if entries < 0:
            raise ValueError("entries must be >= 0")
        self.stack += entries
        self._after_change(now)

    def free_stack(self, entries: float, now: float) -> None:
        """Shrink the working area (CB consumed, front released)."""
        if entries < 0:
            raise ValueError("entries must be >= 0")
        self.stack -= entries
        self._after_change(now)

    def add_factors(self, entries: float, now: float) -> None:
        """Move ``entries`` into the factor area (it only ever grows)."""
        if entries < 0:
            raise ValueError("entries must be >= 0")
        self.factors += entries
        trace = self._trace
        if trace is not None:
            trace.append(now, self.stack, self.factors)

    @property
    def total(self) -> float:
        """Current total memory (factors + working area)."""
        return self.stack + self.factors

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessorMemory(proc={self.proc}, stack={self.stack:.3g}, "
            f"factors={self.factors:.3g}, peak_stack={self.peak_stack:.3g})"
        )
