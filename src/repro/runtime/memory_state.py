"""Per-processor memory accounting.

Mirrors the three storage areas recalled in Section 2 of the paper: the
factors (monotonically growing), and the working storage made of the stack of
contribution blocks plus the active frontal matrices and communication
buffers.  The scheduling strategies act on the *working* area — the paper's
"stack memory" — and every table reports its per-processor peak, so that is
the quantity tracked with full history here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProcessorMemory"]


@dataclass(slots=True)
class ProcessorMemory:
    """Memory state of one simulated processor (all values in entries)."""

    proc: int
    stack: float = 0.0
    factors: float = 0.0
    peak_stack: float = 0.0
    peak_time: float = 0.0
    track_trace: bool = False
    trace_times: list[float] = field(default_factory=list)
    trace_stack: list[float] = field(default_factory=list)
    trace_factors: list[float] = field(default_factory=list)

    def _after_change(self, now: float) -> None:
        if self.stack < -1e-6:
            raise RuntimeError(
                f"processor {self.proc}: stack memory became negative ({self.stack:.1f} entries)"
            )
        if self.stack > self.peak_stack:
            self.peak_stack = self.stack
            self.peak_time = now
        if self.track_trace:
            self.trace_times.append(now)
            self.trace_stack.append(self.stack)
            self.trace_factors.append(self.factors)

    def allocate_stack(self, entries: float, now: float) -> None:
        """Grow the working area (front allocation, CB push, receive buffer)."""
        if entries < 0:
            raise ValueError("entries must be >= 0")
        self.stack += entries
        self._after_change(now)

    def free_stack(self, entries: float, now: float) -> None:
        """Shrink the working area (CB consumed, front released)."""
        if entries < 0:
            raise ValueError("entries must be >= 0")
        self.stack -= entries
        self._after_change(now)

    def add_factors(self, entries: float, now: float) -> None:
        """Move ``entries`` into the factor area (it only ever grows)."""
        if entries < 0:
            raise ValueError("entries must be >= 0")
        self.factors += entries
        if self.track_trace:
            self.trace_times.append(now)
            self.trace_stack.append(self.stack)
            self.trace_factors.append(self.factors)

    @property
    def total(self) -> float:
        """Current total memory (factors + working area)."""
        return self.stack + self.factors
