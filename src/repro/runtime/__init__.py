"""Distributed-memory execution substrate: a discrete-event simulator of the
asynchronous parallel multifrontal factorization.

The paper's experiments run MUMPS on 32 processors of an IBM SP; offline we
replace the machine and the numerical factorization by a discrete-event
simulation that keeps everything the scheduling study depends on: the
assembly-tree task graph, the static mapping, per-processor task pools with
LIFO semantics, dynamic slave selection for type-2 nodes, message latencies
(including the staleness of the memory/load views that Section 4 worries
about), and per-processor accounting of the factor area and of the stack of
contribution blocks in *entries* — the unit of every table of the paper.
"""

from repro.runtime.batch import BatchScenario, run_batch
from repro.runtime.config import SimulationConfig
from repro.runtime.events import EventQueue, FlatEventQueue
from repro.runtime.geometry import SimGeometry
from repro.runtime.messages import CommunicationModel, Message, MessageKind
from repro.runtime.memory_state import ProcessorMemory
from repro.runtime.loadview import SystemView, ViewBank
from repro.runtime.tasks import Task, TaskKind
from repro.runtime.processor import ProcessorState
from repro.runtime.simulator import (
    DEFAULT_ENGINE,
    ENGINE_ALIASES,
    SIM_ENGINE_ENV,
    SIM_ENGINES,
    FactorizationSimulator,
    SimulationResult,
    resolve_engine,
)
from repro.runtime.soa import SimState
from repro.runtime.trace import SimulationTrace, TraceBuffer

__all__ = [
    "SimulationConfig",
    "EventQueue",
    "FlatEventQueue",
    "SIM_ENGINES",
    "SIM_ENGINE_ENV",
    "ENGINE_ALIASES",
    "DEFAULT_ENGINE",
    "resolve_engine",
    "CommunicationModel",
    "Message",
    "MessageKind",
    "ProcessorMemory",
    "SystemView",
    "ViewBank",
    "Task",
    "TaskKind",
    "ProcessorState",
    "FactorizationSimulator",
    "SimulationResult",
    "SimulationTrace",
    "TraceBuffer",
    "SimGeometry",
    "SimState",
    "BatchScenario",
    "run_batch",
]
