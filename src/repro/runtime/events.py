"""Event queue of the discrete-event simulator.

A tiny priority queue keyed by ``(time, sequence)``: the sequence number makes
the simulation fully deterministic when several events share a timestamp
(frequent with zero-latency configurations used in tests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["EventQueue", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """One scheduled event: a timestamp, a tie-breaking sequence and a payload."""

    time: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """Deterministic min-heap of :class:`ScheduledEvent`."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the last popped event (the simulation clock)."""
        return self._now

    def push(self, time: float, payload: Any) -> ScheduledEvent:
        """Schedule ``payload`` at absolute ``time``."""
        if time < self._now - 1e-15:
            raise ValueError(f"cannot schedule event in the past ({time} < {self._now})")
        ev = ScheduledEvent(time=float(time), seq=self._seq, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def push_after(self, delay: float, payload: Any) -> ScheduledEvent:
        """Schedule ``payload`` ``delay`` seconds after the current clock."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        return self.push(self._now + delay, payload)

    def pop(self) -> ScheduledEvent:
        """Pop the next event and advance the clock."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        return ev

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[ScheduledEvent]:
        """Iterate over the remaining events in time order (consuming them)."""
        while self._heap:
            yield self.pop()
