"""Event core of the discrete-event simulator.

Two interchangeable event queues implement the same deterministic ordering —
a min-heap keyed by ``(time, sequence)``, where the sequence number makes the
simulation fully reproducible when several events share a timestamp (frequent
with the zero-latency configurations used in tests):

* :class:`FlatEventQueue` — the fast engine's representation.  Events are raw
  ``(time, seq, tag_id, a, b, c)`` tuples with integer tag constants, so the
  heap compares plain floats/ints instead of calling a generated dataclass
  ``__lt__``, and the simulator dispatches handlers through a table indexed
  by ``tag_id``.
* :class:`EventQueue` — the historical representation (one
  :class:`ScheduledEvent` dataclass per event carrying a string-tagged
  payload tuple), kept as the executable reference engine
  (``REPRO_SIM_ENGINE=reference``).

Both expose the same *typed* push API (``push_task_done``,
``push_broadcast_after``…), so the simulator's handlers emit events without
knowing which representation backs the run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "EventQueue",
    "FlatEventQueue",
    "ScheduledEvent",
    "EV_TASK_DONE",
    "EV_MESSAGE",
    "EV_BROADCAST",
    "EV_RESERVATION",
    "EV_KICK",
    "EV_SLAVE_TASK",
    "EV_CHILD_COMPLETED",
    "BK_MEMORY",
    "BK_LOAD",
    "BK_SUBTREE",
    "BK_PREDICTION",
    "BROADCAST_KIND_NAMES",
    "BROADCAST_KIND_IDS",
]

# ---------------------------------------------------------------------------- #
# integer event vocabulary (the fast engine's dispatch-table indices)
# ---------------------------------------------------------------------------- #
EV_TASK_DONE = 0    # (proc, task) — a processor finished its current task
EV_MESSAGE = 1      # (msg,) — a point-to-point Message arrives
EV_BROADCAST = 2    # (kind_id, source, value) — a view broadcast arrives everywhere
EV_RESERVATION = 3  # (source, reservations) — slave-block reservations arrive
EV_KICK = 4         # (proc,) — initial "look at your pool" nudge at t=0

# The SoA engine dissolves point-to-point :class:`Message` objects into the
# flat tuples themselves (the heap doubles as the message ring buffer): the
# two message kinds become dedicated tags carrying integer operands.
EV_SLAVE_TASK = 5        # (dest, task_id) — a type-2 slave task descriptor arrives
EV_CHILD_COMPLETED = 6   # (parent,) — a child-completed notification arrives

#: broadcast kinds, indexed consistently with ``ViewBank`` column banks.
BK_MEMORY = 0
BK_LOAD = 1
BK_SUBTREE = 2
BK_PREDICTION = 3

BROADCAST_KIND_NAMES = ("memory", "load", "subtree", "prediction")
BROADCAST_KIND_IDS = {name: i for i, name in enumerate(BROADCAST_KIND_NAMES)}


@dataclass(order=True)
class ScheduledEvent:
    """One scheduled event: a timestamp, a tie-breaking sequence and a payload."""

    time: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """Deterministic min-heap of :class:`ScheduledEvent` (the reference engine).

    The generic ``push``/``pop`` API is unchanged from the original engine;
    the typed helpers build the historical string-tagged payload tuples so the
    simulator's handlers can emit events without caring which queue backs the
    run.
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the last popped event (the simulation clock)."""
        return self._now

    def push(self, time: float, payload: Any) -> ScheduledEvent:
        """Schedule ``payload`` at absolute ``time``."""
        if time < self._now - 1e-15:
            raise ValueError(f"cannot schedule event in the past ({time} < {self._now})")
        ev = ScheduledEvent(time=float(time), seq=self._seq, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def push_after(self, delay: float, payload: Any) -> ScheduledEvent:
        """Schedule ``payload`` ``delay`` seconds after the current clock."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        return self.push(self._now + delay, payload)

    def pop(self) -> ScheduledEvent:
        """Pop the next event and advance the clock."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        return ev

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[ScheduledEvent]:
        """Iterate over the remaining events in time order (consuming them)."""
        while self._heap:
            yield self.pop()

    # ------------------------------------------------------------------ #
    # typed pushes (same API as FlatEventQueue, historical payloads)
    # ------------------------------------------------------------------ #
    def push_kick(self, time: float, proc: int) -> None:
        self.push(time, ("kick", proc))

    def push_task_done(self, time: float, proc: int, task) -> None:
        self.push(time, ("task_done", proc, task))

    def push_message_after(self, delay: float, msg) -> None:
        self.push_after(delay, ("message", msg))

    def push_broadcast_after(self, delay: float, kind: str, source: int, value: float) -> None:
        self.push_after(delay, ("broadcast", kind, source, value))

    def push_reservation_after(self, delay: float, source: int, reservations: list) -> None:
        self.push_after(delay, ("reservation", source, reservations))


class FlatEventQueue:
    """Min-heap of raw ``(time, seq, tag_id, a, b, c)`` tuples (the fast engine).

    Tuple comparison never inspects the operands ``a``/``b``/``c``: the
    sequence number is unique, so ordering is decided by ``(time, seq)``
    exactly like the reference queue — the two engines pop events in the same
    order by construction.  The simulator's fast loop reads :attr:`_heap`
    directly (hoisted local + ``heapq.heappop``) and peeks at the heap top to
    coalesce broadcast storms; see ``FactorizationSimulator._run_fast``.
    """

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the last popped event (the simulation clock)."""
        return self._now

    def push(self, time: float, tag: int, a=0, b=0, c=0) -> None:
        """Schedule one flat event at absolute ``time``."""
        if time < self._now - 1e-15:
            raise ValueError(f"cannot schedule event in the past ({time} < {self._now})")
        heapq.heappush(self._heap, (time, self._seq, tag, a, b, c))
        self._seq += 1

    def push_after(self, delay: float, tag: int, a=0, b=0, c=0) -> None:
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.push(self._now + delay, tag, a, b, c)

    def pop(self) -> tuple:
        """Pop the next flat event and advance the clock."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        ev = heapq.heappop(self._heap)
        self._now = ev[0]
        return ev

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    # ------------------------------------------------------------------ #
    # typed pushes (same API as EventQueue)
    # ------------------------------------------------------------------ #
    def push_kick(self, time: float, proc: int) -> None:
        self.push(time, EV_KICK, proc)

    def push_task_done(self, time: float, proc: int, task) -> None:
        self.push(time, EV_TASK_DONE, proc, task)

    def push_message_after(self, delay: float, msg) -> None:
        self.push_after(delay, EV_MESSAGE, msg)

    def push_broadcast_after(self, delay: float, kind: str, source: int, value: float) -> None:
        self.push_after(delay, EV_BROADCAST, BROADCAST_KIND_IDS[kind], source, value)

    def push_reservation_after(self, delay: float, source: int, reservations: list) -> None:
        self.push_after(delay, EV_RESERVATION, source, reservations)
