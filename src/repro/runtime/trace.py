"""Simulation traces: per-processor memory evolution over simulated time.

Used by the figure benchmarks (memory evolution plots of the kind that
motivate Figures 4, 6 and 8) and by the examples.  The trace is built from
the per-processor :class:`~repro.runtime.memory_state.ProcessorMemory`
histories after the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulationTrace"]


@dataclass
class SimulationTrace:
    """Memory history of every processor of one simulated factorization."""

    times: list[np.ndarray]
    stack: list[np.ndarray]
    factors: list[np.ndarray]

    @classmethod
    def from_processors(cls, processors) -> "SimulationTrace":
        return cls(
            times=[np.asarray(p.memory.trace_times, dtype=np.float64) for p in processors],
            stack=[np.asarray(p.memory.trace_stack, dtype=np.float64) for p in processors],
            factors=[np.asarray(p.memory.trace_factors, dtype=np.float64) for p in processors],
        )

    @property
    def nprocs(self) -> int:
        return len(self.times)

    def peak_stack(self, proc: int) -> float:
        arr = self.stack[proc]
        return float(arr.max()) if arr.size else 0.0

    def sampled(self, proc: int, nsamples: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Resample processor ``proc``'s stack history on a regular time grid."""
        t = self.times[proc]
        s = self.stack[proc]
        if t.size == 0:
            return np.zeros(nsamples), np.zeros(nsamples)
        grid = np.linspace(0.0, float(t[-1]), nsamples)
        idx = np.searchsorted(t, grid, side="right") - 1
        idx = np.clip(idx, 0, t.size - 1)
        return grid, s[idx]

    def ascii_sparkline(self, proc: int, width: int = 60) -> str:
        """Compact ascii rendering of one processor's stack history."""
        _, s = self.sampled(proc, width)
        if s.max() <= 0:
            return "·" * width
        levels = " ▁▂▃▄▅▆▇█"
        scaled = np.round(s / s.max() * (len(levels) - 1)).astype(int)
        return "".join(levels[int(v)] for v in scaled)
