"""Simulation traces: per-processor memory evolution over simulated time.

Used by the figure benchmarks (memory evolution plots of the kind that
motivate Figures 4, 6 and 8) and by the examples.  Trace points are recorded
into :class:`TraceBuffer` s — preallocated numpy columns grown by doubling —
so tracing costs three array stores per memory event instead of three Python
list appends, and the post-run trace arrays are zero-copy views of the
buffers.  The trace is built from the per-processor
:class:`~repro.runtime.memory_state.ProcessorMemory` histories (object
engines) or directly from the SoA engine's buffers after the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulationTrace", "TraceBuffer"]


class TraceBuffer:
    """Append-only (time, stack, factors) history in one growable array.

    The storage is a ``(3, capacity)`` float64 block; an append is three
    scalar stores and the capacity doubles when full, so recording a trace
    point never allocates per event.  The ``times``/``stack``/``factors``
    properties are zero-copy views trimmed to the recorded length.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, capacity: int = 1024) -> None:
        self._data = np.empty((3, max(int(capacity), 1)), dtype=np.float64)
        self._size = 0

    def append(self, time: float, stack: float, factors: float) -> None:
        n = self._size
        data = self._data
        if n == data.shape[1]:
            data = np.concatenate((data, np.empty_like(data)), axis=1)
            self._data = data
        data[0, n] = time
        data[1, n] = stack
        data[2, n] = factors
        self._size = n + 1

    def __len__(self) -> int:
        return self._size

    @property
    def times(self) -> np.ndarray:
        return self._data[0, : self._size]

    @property
    def stack(self) -> np.ndarray:
        return self._data[1, : self._size]

    @property
    def factors(self) -> np.ndarray:
        return self._data[2, : self._size]


@dataclass
class SimulationTrace:
    """Memory history of every processor of one simulated factorization."""

    times: list[np.ndarray]
    stack: list[np.ndarray]
    factors: list[np.ndarray]

    @classmethod
    def from_processors(cls, processors) -> "SimulationTrace":
        return cls(
            times=[np.asarray(p.memory.trace_times, dtype=np.float64) for p in processors],
            stack=[np.asarray(p.memory.trace_stack, dtype=np.float64) for p in processors],
            factors=[np.asarray(p.memory.trace_factors, dtype=np.float64) for p in processors],
        )

    @classmethod
    def from_buffers(cls, buffers: list[TraceBuffer]) -> "SimulationTrace":
        """Build a trace straight from the SoA engine's per-processor buffers."""
        return cls(
            times=[b.times for b in buffers],
            stack=[b.stack for b in buffers],
            factors=[b.factors for b in buffers],
        )

    @classmethod
    def from_blocks(cls, blocks: list[np.ndarray]) -> "SimulationTrace":
        """Build a trace from per-processor ``(3, n)`` blocks (see :meth:`to_blocks`)."""
        arrays = [np.asarray(b, dtype=np.float64) for b in blocks]
        return cls(
            times=[b[0] for b in arrays],
            stack=[b[1] for b in arrays],
            factors=[b[2] for b in arrays],
        )

    def to_blocks(self) -> list[np.ndarray]:
        """Per-processor ``(3, n)`` blocks in the :class:`TraceBuffer` layout.

        Row order is times / stack / factors — the persistence codec in
        ``repro.results.traces`` round-trips through exactly this shape.
        """
        return [
            np.stack(
                (
                    np.asarray(self.times[p], dtype=np.float64),
                    np.asarray(self.stack[p], dtype=np.float64),
                    np.asarray(self.factors[p], dtype=np.float64),
                )
            )
            for p in range(len(self.times))
        ]

    @property
    def nprocs(self) -> int:
        return len(self.times)

    def peak_stack(self, proc: int) -> float:
        arr = self.stack[proc]
        return float(arr.max()) if arr.size else 0.0

    def sampled(self, proc: int, nsamples: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """Resample processor ``proc``'s stack history on a regular time grid."""
        t = self.times[proc]
        s = self.stack[proc]
        if t.size == 0:
            return np.zeros(nsamples), np.zeros(nsamples)
        grid = np.linspace(0.0, float(t[-1]), nsamples)
        idx = np.searchsorted(t, grid, side="right") - 1
        idx = np.clip(idx, 0, t.size - 1)
        return grid, s[idx]

    def ascii_sparkline(self, proc: int, width: int = 60) -> str:
        """Compact ascii rendering of one processor's stack history."""
        _, s = self.sampled(proc, width)
        if s.max() <= 0:
            return "·" * width
        levels = " ▁▂▃▄▅▆▇█"
        scaled = np.round(s / s.max() * (len(levels) - 1)).astype(int)
        return "".join(levels[int(v)] for v in scaled)
