"""Messages exchanged by the simulated processors and their cost model.

The factorization itself exchanges contribution blocks and slave-task
descriptors; the scheduling machinery additionally exchanges small
bookkeeping broadcasts — memory variations, workload updates, subtree peaks
and predicted master costs (Sections 3-5 of the paper).  All of them go
through the same latency + bandwidth model so that the *staleness* of the
remote views (the hazard of Figure 5) is represented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

__all__ = ["MessageKind", "Message", "CommunicationModel"]


class MessageKind(Enum):
    """Kinds of simulated messages."""

    CB_TRANSFER = auto()        # a contribution-block piece travels to the parent's processor
    CHILD_COMPLETED = auto()    # notification that a child node finished (parent may become ready)
    SLAVE_TASK = auto()         # master -> slave: rows of a type-2 node to update
    SLAVE_DONE = auto()         # slave -> master: the slave part is finished
    MEMORY_UPDATE = auto()      # broadcast of a processor's current stack occupation
    LOAD_UPDATE = auto()        # broadcast of a processor's remaining workload (flops)
    SUBTREE_PEAK = auto()       # broadcast of the peak of the subtree being started (Section 5.1)
    MASTER_PREDICTION = auto()  # broadcast of the cost of the next upper-layer master task (Section 5.1)
    SLAVE_RESERVATION = auto()  # broadcast of a freshly made slave selection (coherence mechanism)
    ROOT_READY = auto()         # the type-3 root node became ready


@dataclass(slots=True)
class Message:
    """One message travelling between two simulated processors."""

    kind: MessageKind
    source: int
    dest: int
    node: int = -1
    value: float = 0.0
    rows: int = 0
    entries: int = 0
    payload: dict = field(default_factory=dict)


@dataclass
class CommunicationModel:
    """Latency/bandwidth communication cost model.

    ``transfer_time(entries)`` returns the one-way duration of a message
    carrying ``entries`` floating-point values; pure notifications use
    ``entries=0`` and cost one latency.
    """

    latency: float = 20.0e-6
    bandwidth_entries: float = 5.0e7
    small_message_latency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth_entries <= 0:
            raise ValueError("invalid communication parameters")

    def transfer_time(self, entries: int | float) -> float:
        """One-way travel time of a message carrying ``entries`` values."""
        if entries < 0:
            raise ValueError("entries must be >= 0")
        return self.latency + float(entries) / self.bandwidth_entries

    def notification_time(self) -> float:
        """Travel time of a small bookkeeping message."""
        if self.small_message_latency is not None:
            return self.small_message_latency
        return self.latency
