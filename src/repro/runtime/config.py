"""Configuration of the parallel factorization simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "SimulationConfig",
    "PAPER_TYPE2_FRONT_THRESHOLD",
    "PAPER_TYPE2_CB_THRESHOLD",
    "PAPER_TYPE3_FRONT_THRESHOLD",
]

#: Node-type thresholds used throughout the paper's experiments (scaled to
#: the synthetic analogues).  Shared by :meth:`SimulationConfig.paper`, the
#: pipeline engine's default config and the one-call ``repro.simulate``.
PAPER_TYPE2_FRONT_THRESHOLD = 96
PAPER_TYPE2_CB_THRESHOLD = 24
PAPER_TYPE3_FRONT_THRESHOLD = 256


@dataclass
class SimulationConfig:
    """Machine and policy parameters of the simulated run.

    The absolute values only set the time scale (Table 6 uses ratios); the
    defaults approximate one Power4 node of the paper's IBM SP.

    Attributes
    ----------
    nprocs:
        Number of processors (the paper uses 32).
    flop_rate:
        Sustained flops per second and per processor.
    latency:
        One-way message latency in seconds (applies to every message).
    bandwidth_entries:
        Entries per second transferred once the latency is paid (an entry is
        one floating-point value, the paper's memory unit).
    assembly_rate:
        Entry-additions per second during assembly (memory-bound, slower than
        the factorization kernels).
    min_rows_per_slave:
        Granularity constraint of the slave selection: a slave receives at
        least this many rows (unless fewer remain).
    max_slaves_per_node:
        Upper bound on the number of slaves of one type-2 node.
    type2_front_threshold, type2_cb_threshold, type3_front_threshold:
        Node-type thresholds forwarded to the static mapping.
    memory_message_latency:
        Latency of the small bookkeeping broadcasts (memory/load/prediction).
        The paper's Figure 5 hazard comes precisely from this delay.
    track_traces:
        Record full per-processor memory traces (needed by the figure
        benchmarks; costs memory for big runs).
    imbalance_tolerance, min_subtrees_per_proc:
        Geist-Ng layer construction parameters.
    faults:
        Optional fault-injection spec in the mini-language of
        :mod:`repro.faults` (``"stragglers(frac=0.1)+msgloss(p=0.01)"``).
        ``None`` (the default) keeps every engine bit-identical to the
        unperturbed machine.
    fault_seed:
        Seed of the deterministic fault-model random streams; only
        meaningful when ``faults`` is set.
    """

    nprocs: int = 32
    flop_rate: float = 2.0e9
    latency: float = 20.0e-6
    bandwidth_entries: float = 5.0e7
    assembly_rate: float = 2.0e8
    min_rows_per_slave: int = 16
    max_slaves_per_node: int = 0  # 0 means "no explicit bound" (all processors)
    type2_front_threshold: int = 200
    type2_cb_threshold: int = 40
    type3_front_threshold: int = 400
    memory_message_latency: float = 20.0e-6
    track_traces: bool = False
    imbalance_tolerance: float = 1.25
    min_subtrees_per_proc: float = 1.0
    subtree_cost: str = "flops"
    faults: Optional[str] = None
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.flop_rate <= 0 or self.bandwidth_entries <= 0 or self.assembly_rate <= 0:
            raise ValueError("rates must be positive")
        if self.latency < 0 or self.memory_message_latency < 0:
            raise ValueError("latencies must be >= 0")
        if self.min_rows_per_slave < 1:
            raise ValueError("min_rows_per_slave must be >= 1")
        if self.max_slaves_per_node < 0:
            raise ValueError("max_slaves_per_node must be >= 0")
        if self.faults == "":
            # "" and None must not address distinct cache keys for the same
            # (unperturbed) machine
            self.faults = None
        if self.fault_seed < 0:
            raise ValueError("fault_seed must be >= 0")

    @classmethod
    def paper(cls, nprocs: int = 32, **overrides) -> "SimulationConfig":
        """The experiment defaults: paper node-type thresholds at ``nprocs``.

        This is the single home of the 96/24/256 thresholds the tables,
        the pipeline engine and :func:`repro.simulate` all run with;
        ``overrides`` replace any other field.
        """
        params: dict[str, object] = {
            "nprocs": nprocs,
            "type2_front_threshold": PAPER_TYPE2_FRONT_THRESHOLD,
            "type2_cb_threshold": PAPER_TYPE2_CB_THRESHOLD,
            "type3_front_threshold": PAPER_TYPE3_FRONT_THRESHOLD,
        }
        params.update(overrides)
        return cls(**params)  # type: ignore[arg-type]

    def replace(self, **overrides) -> "SimulationConfig":
        """A copy of this config with ``overrides`` applied."""
        return SimulationConfig(**{**self.__dict__, **overrides})

    def mapping_params(self) -> dict[str, object]:
        """The keyword arguments this config implies for ``compute_mapping``."""
        return {
            "type2_front_threshold": self.type2_front_threshold,
            "type2_cb_threshold": self.type2_cb_threshold,
            "type3_front_threshold": self.type3_front_threshold,
            "imbalance_tolerance": self.imbalance_tolerance,
            "min_subtrees_per_proc": self.min_subtrees_per_proc,
            "subtree_cost": self.subtree_cost,
        }

    def effective_max_slaves(self) -> int:
        """Largest number of slaves a type-2 node may use."""
        if self.max_slaves_per_node == 0:
            return max(self.nprocs - 1, 1)
        return min(self.max_slaves_per_node, max(self.nprocs - 1, 1))
