"""State of one simulated processor.

Each processor owns a LIFO *pool* of ready tasks statically assigned to it
(Section 5.2 and Figure 7 of the paper), a FIFO of received slave tasks
(activated as soon as possible, Section 3), its memory accounting and its
stale view of the rest of the system.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.runtime.loadview import SystemView
from repro.runtime.memory_state import ProcessorMemory
from repro.runtime.tasks import Task

__all__ = ["ProcessorState"]


@dataclass(slots=True)
class ProcessorState:
    """Dynamic state of one processor during the simulated factorization."""

    proc: int
    nprocs: int
    memory: ProcessorMemory = None
    view: SystemView = None
    pool: list[Task] = field(default_factory=list)          # LIFO stack of ready local tasks
    slave_queue: deque = field(default_factory=deque)       # FIFO of received slave tasks
    busy_until: float = 0.0
    current_task: Task | None = None
    load_remaining: float = 0.0       # flops of statically assigned + received work not yet done
    current_subtree: int = -1         # leaf-subtree root currently being processed (-1 outside)
    current_subtree_peak: float = 0.0
    observed_peak: float = 0.0        # peak of the working area observed locally so far
    last_broadcast_memory: float = 0.0
    last_broadcast_load: float = 0.0
    last_broadcast_prediction: float = 0.0
    tasks_done: int = 0

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = ProcessorMemory(proc=self.proc)
        if self.view is None:
            self.view = SystemView(nprocs=self.nprocs, owner=self.proc)

    # ------------------------------------------------------------------ #
    @property
    def idle(self) -> bool:
        return self.current_task is None

    def has_work(self) -> bool:
        return bool(self.pool) or bool(self.slave_queue)

    def push_ready_task(self, task: Task) -> None:
        """A node became ready: push its task on top of the pool (stack mechanism)."""
        self.pool.append(task)

    def pop_task(self, index: int) -> Task:
        """Remove and return the pool entry at ``index`` (top is ``len(pool)-1``)."""
        return self.pool.pop(index)

    def queue_slave_task(self, task: Task) -> None:
        self.slave_queue.append(task)

    def local_memory_for_decisions(self) -> float:
        """Own memory metric used by Algorithm 2: current stack plus the peak
        of the subtree currently being treated."""
        extra = self.current_subtree_peak if self.current_subtree >= 0 else 0.0
        return float(self.memory.stack) + float(extra)

    def note_observed_peak(self) -> None:
        self.observed_peak = max(self.observed_peak, float(self.memory.stack))
