"""Batched simulation runs over one shared analysis.

A scheduling sweep (the paper's tables: one row per strategy, the columns a
fixed problem/ordering/nprocs) re-simulates the *same* assembly tree and
static mapping many times.  The per-run cost of rebuilding the scheduling
geometry and allocating fresh ``(nprocs, nprocs)`` view banks then rivals the
event loop itself.  :func:`run_batch` amortizes both: it precomputes one
:class:`~repro.runtime.geometry.SimGeometry` and one
:class:`~repro.runtime.loadview.ViewBank` and runs every scenario against
them in-process (the simulator resets a reused bank, so runs stay
independent — pinned by the batch-identity test in
``tests/test_engine_identity.py``).

The pipeline layer builds on this through
:meth:`repro.pipeline.engine.AnalysisPipeline.run_cases_batched` /
``Session.sweep(batch=True)``, which group case specs by their upstream
analysis key and machine config before dispatching here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.mapping.layers import StaticMapping, compute_mapping
from repro.runtime.config import SimulationConfig
from repro.runtime.geometry import SimGeometry
from repro.runtime.loadview import ViewBank
from repro.scheduling.base import SlaveSelector, TaskSelector

__all__ = ["BatchScenario", "run_batch"]


@dataclass
class BatchScenario:
    """One strategy to simulate against the shared (tree, mapping, nprocs).

    ``config`` optionally overrides the batch-level configuration for this
    scenario (e.g. to enable traces on a single run); it must keep the same
    ``nprocs`` — anything that changes the mapping or geometry belongs in a
    different batch.
    """

    slave_selector: SlaveSelector
    task_selector: TaskSelector
    strategy_name: str = ""
    config: Optional[SimulationConfig] = None


def run_batch(
    tree,
    scenarios: Iterable[BatchScenario],
    *,
    config: SimulationConfig | None = None,
    mapping: StaticMapping | None = None,
    engine: str | None = None,
):
    """Simulate every scenario against one precomputed geometry and view bank.

    Returns the list of :class:`~repro.runtime.simulator.SimulationResult`
    in scenario order.  Results are bit-identical to constructing one
    simulator per scenario from scratch: the geometry is a pure function of
    ``(tree, mapping, nprocs)`` and the simulator resets the shared bank
    before each run.
    """
    from repro.runtime.simulator import FactorizationSimulator

    base = config if config is not None else SimulationConfig()
    if mapping is None:
        mapping = compute_mapping(
            tree,
            base.nprocs,
            type2_front_threshold=base.type2_front_threshold,
            type2_cb_threshold=base.type2_cb_threshold,
            type3_front_threshold=base.type3_front_threshold,
            imbalance_tolerance=base.imbalance_tolerance,
            min_subtrees_per_proc=base.min_subtrees_per_proc,
            subtree_cost=base.subtree_cost,
        )
    if mapping.nprocs != base.nprocs:
        raise ValueError("mapping.nprocs does not match config.nprocs")
    geometry = SimGeometry.for_run(tree, mapping, base.nprocs)
    views = ViewBank(base.nprocs)
    results = []
    for sc in scenarios:
        cfg = sc.config if sc.config is not None else base
        if cfg.nprocs != base.nprocs:
            raise ValueError(
                f"scenario {sc.strategy_name!r} changes nprocs "
                f"({cfg.nprocs} != {base.nprocs}); start a new batch instead"
            )
        sim = FactorizationSimulator(
            tree,
            config=cfg,
            mapping=mapping,
            slave_selector=sc.slave_selector,
            task_selector=sc.task_selector,
            strategy_name=sc.strategy_name,
            views=views,
            engine=engine,
            geometry=geometry,
        )
        results.append(sim.run())
    return results
