"""Interfaces of the dynamic scheduling decision points.

The simulator hands each decision a small *context* object carrying exactly
the information the corresponding MUMPS mechanism would have at that moment:
the (possibly stale) remote views, the local state of the deciding processor
and the geometry of the node concerned.  Strategies must not reach into the
simulator; everything they may legitimately use is in the context.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "SlaveSelectionContext",
    "TaskSelectionContext",
    "SlaveSelector",
    "TaskSelector",
    "normalize_row_distribution",
]


@dataclass
class SlaveSelectionContext:
    """Everything a master knows when it has to pick slaves for a type-2 node.

    Attributes
    ----------
    master_proc:
        The deciding processor (master of the node).
    node:
        Assembly-tree node index.
    npiv, nfront, ncb:
        Geometry of the front; ``ncb`` rows must be distributed to slaves.
    symmetric:
        Storage convention of the front.
    candidates:
        Processors allowed to act as slaves (the master itself is excluded).
    memory_view:
        ``memory_view[q]`` — believed stack occupation of processor ``q``
        (instantaneous metric of Section 4).
    effective_memory_view:
        Section 5.1 metric: instantaneous memory + current-subtree peak +
        predicted next master task, per processor.
    load_view:
        Believed remaining workload (flops) per processor.
    own_load:
        Remaining workload of the master.
    own_memory:
        Current stack occupation of the master.
    min_rows_per_slave, max_slaves:
        Granularity constraints from the simulation configuration.
    """

    master_proc: int
    node: int
    npiv: int
    nfront: int
    ncb: int
    symmetric: bool
    candidates: Sequence[int]
    memory_view: np.ndarray
    effective_memory_view: np.ndarray
    load_view: np.ndarray
    own_load: float
    own_memory: float
    min_rows_per_slave: int = 1
    max_slaves: int = 1


@dataclass
class TaskSelectionContext:
    """What a processor knows when it picks the next task from its pool.

    Attributes
    ----------
    proc:
        The deciding processor.
    pool:
        The ready tasks, bottom to top (index ``len(pool) - 1`` is the top of
        the stack, i.e. what the original MUMPS strategy would pick).
    current_memory:
        Current stack occupation of the processor.
    current_subtree:
        Leaf-subtree root currently being processed, or ``-1``.
    current_subtree_peak:
        Peak (entries) of that subtree — the "including peak of subtree" term
        of Algorithm 2.
    observed_peak:
        Peak of the working area observed locally since the beginning of the
        factorization (the reference level of Algorithm 2).
    """

    proc: int
    pool: Sequence
    current_memory: float
    current_subtree: int
    current_subtree_peak: float
    observed_peak: float


class SlaveSelector(abc.ABC):
    """Strategy choosing the slaves (and their row counts) of a type-2 node."""

    name = "abstract"

    @abc.abstractmethod
    def select(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        """Return ``[(processor, rows), ...]`` covering all ``ctx.ncb`` rows."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TaskSelector(abc.ABC):
    """Strategy choosing which ready task of the local pool to activate next."""

    name = "abstract"

    @abc.abstractmethod
    def select(self, ctx: TaskSelectionContext) -> int:
        """Return the index (into ``ctx.pool``) of the task to activate."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def normalize_row_distribution(
    assignment: list[tuple[int, int]],
    ncb: int,
    candidates: Sequence[int],
) -> list[tuple[int, int]]:
    """Sanitise a slave-row assignment.

    Drops non-candidate processors and non-positive row counts, clips the
    total to ``ncb`` and hands any remaining rows to the first listed slave
    (or to the first candidate when the strategy returned nothing usable).
    The simulator always passes strategy output through this function so a
    buggy or degenerate strategy cannot lose rows of the front.
    """
    if ncb <= 0:
        return []
    candidate_set = set(int(c) for c in candidates)
    cleaned: list[tuple[int, int]] = []
    remaining = ncb
    for proc, rows in assignment:
        proc = int(proc)
        rows = int(rows)
        if proc not in candidate_set or rows <= 0 or remaining <= 0:
            continue
        rows = min(rows, remaining)
        cleaned.append((proc, rows))
        remaining -= rows
    if remaining > 0:
        if cleaned:
            proc, rows = cleaned[0]
            cleaned[0] = (proc, rows + remaining)
        elif candidate_set:
            cleaned.append((sorted(candidate_set)[0], remaining))
    return cleaned
