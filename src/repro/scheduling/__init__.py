"""The paper's contribution: dynamic memory-based scheduling strategies.

Three pluggable decision points drive the simulated factorization:

* **slave selection** for type-2 nodes — either MUMPS' original
  workload-based choice (:class:`WorkloadSlaveSelector`, Section 3) or the
  paper's Algorithm 1 (:class:`MemorySlaveSelector`, Section 4), optionally
  augmented with the Section 5.1 prediction terms;
* **task selection** in the local pool — either the original LIFO stack
  (:class:`LifoTaskSelector`) or the paper's Algorithm 2
  (:class:`MemoryAwareTaskSelector`, Section 5.2);
* the **strategy presets** of :mod:`repro.scheduling.presets` bundle the two
  choices under the names used throughout the experiments
  (``"mumps-workload"``, ``"memory-basic"``, ``"memory-full"``, …).
"""

from repro.scheduling.base import (
    SlaveSelector,
    TaskSelector,
    SlaveSelectionContext,
    TaskSelectionContext,
    normalize_row_distribution,
)
from repro.scheduling.workload import WorkloadSlaveSelector
from repro.scheduling.memory_slave import MemorySlaveSelector
from repro.scheduling.task_selection import LifoTaskSelector, MemoryAwareTaskSelector, FifoTaskSelector
from repro.scheduling.hybrid import HybridSlaveSelector
from repro.scheduling.presets import (
    STRATEGIES,
    SchedulingStrategy,
    canonical_strategy,
    get_strategy,
    resolve_strategy,
)

__all__ = [
    "SlaveSelector",
    "TaskSelector",
    "SlaveSelectionContext",
    "TaskSelectionContext",
    "normalize_row_distribution",
    "WorkloadSlaveSelector",
    "MemorySlaveSelector",
    "LifoTaskSelector",
    "FifoTaskSelector",
    "MemoryAwareTaskSelector",
    "HybridSlaveSelector",
    "STRATEGIES",
    "SchedulingStrategy",
    "get_strategy",
    "resolve_strategy",
    "canonical_strategy",
]
