"""Named strategy bundles used throughout the experiments.

A *strategy* is a (slave selector, task selector) pair:

============== ============================== ===========================
name           slave selection                task selection
============== ============================== ===========================
mumps-workload workload-based (Section 3)      LIFO stack (original MUMPS)
memory-basic   Algorithm 1, no predictions     LIFO stack
memory-slave   Algorithm 1 + Section 5.1       LIFO stack
memory-task    workload-based                  Algorithm 2
memory-full    Algorithm 1 + Section 5.1       Algorithm 2
hybrid         workload/memory blend           Algorithm 2
============== ============================== ===========================

``memory-full`` is "the dynamic memory strategies" whose gains the paper's
Tables 2, 3 and 5 report against ``mumps-workload``; the intermediate presets
exist for the ablation benchmarks.

Strategies live in the :data:`STRATEGIES` registry and may declare keyword
parameters; :func:`resolve_strategy` accepts the spec mini-language, so
``"hybrid(alpha=0.25)"`` is a valid strategy name everywhere one is expected
(:func:`repro.simulate`, :class:`~repro.pipeline.stage.CaseSpec`, the CLI's
``--strategies``):

>>> strategy, params = resolve_strategy("hybrid(alpha=0.25)")
>>> slave, task = strategy.build(**params)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.registry import Registry, validate_params
from repro.scheduling.base import SlaveSelector, TaskSelector
from repro.scheduling.hybrid import HybridSlaveSelector
from repro.scheduling.memory_slave import MemorySlaveSelector
from repro.scheduling.task_selection import LifoTaskSelector, MemoryAwareTaskSelector
from repro.scheduling.workload import WorkloadSlaveSelector
from repro.specs import ParamSpec

__all__ = [
    "SchedulingStrategy",
    "STRATEGIES",
    "get_strategy",
    "resolve_strategy",
    "canonical_strategy",
]


@dataclass
class SchedulingStrategy:
    """A named pair of scheduling policies, ready to hand to the simulator.

    ``params`` declares the keyword parameters :meth:`build` accepts (name →
    default); they are forwarded to the slave-selector factory, so a preset
    like ``hybrid`` can be instantiated as ``hybrid(alpha=0.25)`` without
    registering one preset per parameter value.
    """

    name: str
    description: str
    make_slave_selector: Callable[..., SlaveSelector]
    make_task_selector: Callable[[], TaskSelector]
    params: Mapping[str, object] = field(default_factory=dict)

    def build(self, **params) -> tuple[SlaveSelector, TaskSelector]:
        """Fresh selector instances configured with ``params``.

        Unknown parameters raise ``ValueError`` naming the accepted set
        (strategies are stateless but cheap to rebuild).
        """
        validate_params("strategy", self.name, self.params, params)
        merged = {**self.params, **params}
        return self.make_slave_selector(**merged), self.make_task_selector()


STRATEGIES: Registry[SchedulingStrategy] = Registry("strategy")


def _add(strategy: SchedulingStrategy) -> None:
    STRATEGIES.add(
        strategy.name,
        strategy,
        description=strategy.description,
        params=strategy.params,
    )


_add(
    SchedulingStrategy(
        name="mumps-workload",
        description="Original MUMPS: workload-based slave selection, LIFO task pool (Section 3)",
        make_slave_selector=WorkloadSlaveSelector,
        make_task_selector=LifoTaskSelector,
    )
)
_add(
    SchedulingStrategy(
        name="memory-basic",
        description="Algorithm 1 with the instantaneous-memory metric only (Section 4)",
        make_slave_selector=lambda: MemorySlaveSelector(use_predictions=False),
        make_task_selector=LifoTaskSelector,
    )
)
_add(
    SchedulingStrategy(
        name="memory-slave",
        description="Algorithm 1 with the Section 5.1 prediction metric, LIFO task pool",
        make_slave_selector=lambda: MemorySlaveSelector(use_predictions=True),
        make_task_selector=LifoTaskSelector,
    )
)
_add(
    SchedulingStrategy(
        name="memory-task",
        description="Workload-based slave selection with the Algorithm 2 task pool (Section 5.2)",
        make_slave_selector=WorkloadSlaveSelector,
        make_task_selector=MemoryAwareTaskSelector,
    )
)
_add(
    SchedulingStrategy(
        name="memory-full",
        description="The paper's full dynamic memory strategy: Algorithm 1 + Section 5.1 + Algorithm 2",
        make_slave_selector=lambda: MemorySlaveSelector(use_predictions=True),
        make_task_selector=MemoryAwareTaskSelector,
    )
)
_add(
    SchedulingStrategy(
        name="hybrid",
        description="Workload/memory blended ranking (the future work sketched in the conclusion)",
        make_slave_selector=lambda alpha=0.5, use_predictions=True: HybridSlaveSelector(
            alpha=alpha, use_predictions=use_predictions
        ),
        make_task_selector=MemoryAwareTaskSelector,
        params={"alpha": 0.5, "use_predictions": True},
    )
)


def get_strategy(name: str) -> SchedulingStrategy:
    """Look up a strategy preset by name (case-insensitive, did-you-mean errors).

    ``name`` may carry the spec mini-language's parameters
    (``"hybrid(alpha=0.3)"``); they are validated and discarded here — use
    :func:`resolve_strategy` to keep them.
    """
    return resolve_strategy(name)[0]


def resolve_strategy(spec: str | ParamSpec) -> tuple[SchedulingStrategy, dict[str, object]]:
    """Parse a strategy spec into (preset, bound parameters).

    Validates the parameter names against the preset's declared ``params``,
    so a typo (``hybrid(aplha=0.3)``) fails at parse time rather than at
    simulation time.
    """
    entry, params = STRATEGIES.resolve(spec)
    return entry.value, params  # type: ignore[return-value]


def canonical_strategy(spec: str | ParamSpec) -> str:
    """Canonical spec string with the preset's defaults bound.

    ``"hybrid"`` and ``"HYBRID(alpha=0.5)"`` both canonicalise to
    ``"hybrid(alpha=0.5,use_predictions=true)"`` — the form the pipeline
    cache keys use, so equivalent spellings share artifacts and distinct
    parameterisations never collide.
    """
    strategy, params = resolve_strategy(spec)
    return ParamSpec(strategy.name, tuple(params.items())).with_defaults(strategy.params).canonical()
