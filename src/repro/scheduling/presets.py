"""Named strategy bundles used throughout the experiments.

A *strategy* is a (slave selector, task selector) pair:

============== ============================== ===========================
name           slave selection                task selection
============== ============================== ===========================
mumps-workload workload-based (Section 3)      LIFO stack (original MUMPS)
memory-basic   Algorithm 1, no predictions     LIFO stack
memory-slave   Algorithm 1 + Section 5.1       LIFO stack
memory-task    workload-based                  Algorithm 2
memory-full    Algorithm 1 + Section 5.1       Algorithm 2
hybrid         workload/memory blend           Algorithm 2
============== ============================== ===========================

``memory-full`` is "the dynamic memory strategies" whose gains the paper's
Tables 2, 3 and 5 report against ``mumps-workload``; the intermediate presets
exist for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.scheduling.base import SlaveSelector, TaskSelector
from repro.scheduling.hybrid import HybridSlaveSelector
from repro.scheduling.memory_slave import MemorySlaveSelector
from repro.scheduling.task_selection import LifoTaskSelector, MemoryAwareTaskSelector
from repro.scheduling.workload import WorkloadSlaveSelector

__all__ = ["SchedulingStrategy", "STRATEGIES", "get_strategy"]


@dataclass
class SchedulingStrategy:
    """A named pair of scheduling policies, ready to hand to the simulator."""

    name: str
    description: str
    make_slave_selector: Callable[[], SlaveSelector]
    make_task_selector: Callable[[], TaskSelector]

    def build(self) -> tuple[SlaveSelector, TaskSelector]:
        """Fresh selector instances (strategies are stateless but cheap to rebuild)."""
        return self.make_slave_selector(), self.make_task_selector()


STRATEGIES: dict[str, SchedulingStrategy] = {
    "mumps-workload": SchedulingStrategy(
        name="mumps-workload",
        description="Original MUMPS: workload-based slave selection, LIFO task pool (Section 3)",
        make_slave_selector=WorkloadSlaveSelector,
        make_task_selector=LifoTaskSelector,
    ),
    "memory-basic": SchedulingStrategy(
        name="memory-basic",
        description="Algorithm 1 with the instantaneous-memory metric only (Section 4)",
        make_slave_selector=lambda: MemorySlaveSelector(use_predictions=False),
        make_task_selector=LifoTaskSelector,
    ),
    "memory-slave": SchedulingStrategy(
        name="memory-slave",
        description="Algorithm 1 with the Section 5.1 prediction metric, LIFO task pool",
        make_slave_selector=lambda: MemorySlaveSelector(use_predictions=True),
        make_task_selector=LifoTaskSelector,
    ),
    "memory-task": SchedulingStrategy(
        name="memory-task",
        description="Workload-based slave selection with the Algorithm 2 task pool (Section 5.2)",
        make_slave_selector=WorkloadSlaveSelector,
        make_task_selector=MemoryAwareTaskSelector,
    ),
    "memory-full": SchedulingStrategy(
        name="memory-full",
        description="The paper's full dynamic memory strategy: Algorithm 1 + Section 5.1 + Algorithm 2",
        make_slave_selector=lambda: MemorySlaveSelector(use_predictions=True),
        make_task_selector=MemoryAwareTaskSelector,
    ),
    "hybrid": SchedulingStrategy(
        name="hybrid",
        description="Workload/memory blended ranking (the future work sketched in the conclusion)",
        make_slave_selector=lambda: HybridSlaveSelector(alpha=0.5),
        make_task_selector=MemoryAwareTaskSelector,
    ),
}


def get_strategy(name: str) -> SchedulingStrategy:
    """Look up a strategy preset by name (case-insensitive)."""
    key = name.lower()
    if key not in STRATEGIES:
        raise ValueError(f"unknown strategy {name!r}; expected one of {sorted(STRATEGIES)}")
    return STRATEGIES[key]
