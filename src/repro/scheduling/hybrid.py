"""Hybrid workload/memory slave selection (the paper's stated future work).

The conclusion of the paper calls for "hybrid strategies well adapted at both
balancing the workload and the memory".  This selector is a straightforward
realisation used by the ablation benchmarks: candidates are ranked by a
weighted combination of their normalised memory metric and their normalised
workload, and rows are distributed with the same levelling procedure as
Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.base import SlaveSelectionContext, SlaveSelector
from repro.scheduling.memory_slave import MemorySlaveSelector
from repro.scheduling.prediction import selection_metric

__all__ = ["HybridSlaveSelector"]


class HybridSlaveSelector(SlaveSelector):
    """Rank slaves by ``alpha * memory + (1 - alpha) * workload`` (both normalised).

    ``alpha = 1`` recovers the memory-based behaviour, ``alpha = 0`` a purely
    workload-driven ranking (with Algorithm 1's row levelling kept in both
    cases so that only the *ranking* changes).
    """

    name = "hybrid"

    def __init__(self, alpha: float = 0.5, *, use_predictions: bool = True, vectorized: bool = True):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be within [0, 1]")
        self.alpha = alpha
        self.use_predictions = use_predictions
        self.vectorized = vectorized
        self._memory_selector = MemorySlaveSelector(
            use_predictions=use_predictions, vectorized=vectorized
        )

    def select(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if ctx.ncb <= 0 or not ctx.candidates:
            return []
        memory = selection_metric(ctx, use_predictions=self.use_predictions)
        load = np.asarray(ctx.load_view, dtype=np.float64)

        def normalise(values: np.ndarray) -> np.ndarray:
            span = float(values.max() - values.min())
            if span <= 0:
                return np.zeros_like(values)
            return (values - values.min()) / span

        combined = self.alpha * normalise(memory) + (1.0 - self.alpha) * normalise(load)
        # Reuse Algorithm 1 by presenting the combined score as the "memory"
        # metric: the levelling arithmetic then operates on the blended rank.
        scaled = combined * max(float(ctx.ncb) * float(ctx.nfront), 1.0)
        blended_ctx = SlaveSelectionContext(
            master_proc=ctx.master_proc,
            node=ctx.node,
            npiv=ctx.npiv,
            nfront=ctx.nfront,
            ncb=ctx.ncb,
            symmetric=ctx.symmetric,
            candidates=ctx.candidates,
            memory_view=scaled,
            effective_memory_view=scaled,
            load_view=ctx.load_view,
            own_load=ctx.own_load,
            own_memory=ctx.own_memory,
            min_rows_per_slave=ctx.min_rows_per_slave,
            max_slaves=ctx.max_slaves,
        )
        return self._memory_selector.select(blended_ctx)
