"""Section 5.1: injecting static knowledge into the dynamic metric.

Two broadcast mechanisms feed the remote views maintained by the runtime:

* when a processor starts a leaf subtree it broadcasts the *peak* of that
  subtree (subtree tasks are small and frequent, so broadcasting each of them
  would be pointless — the peak is the right summary);
* when a child of an upper-layer node completes, the processor in charge of
  the parent broadcasts the memory cost of the largest master task it is
  about to activate, and refreshes that value whenever it activates one.

Both values are maintained by the simulator (see
:meth:`repro.runtime.simulator.FactorizationSimulator`); this module only
holds the *metric* that combines them with the instantaneous memory, so the
slave selectors and the tests share a single definition.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.base import SlaveSelectionContext

__all__ = ["selection_metric"]


def selection_metric(ctx: SlaveSelectionContext, *, use_predictions: bool) -> np.ndarray:
    """Per-processor memory metric used by the memory-based slave selection.

    With ``use_predictions=False`` this is the believed instantaneous memory
    (Section 4); with ``use_predictions=True`` it is the Section 5.1 sum
    "instantaneous memory + current-subtree peak + predicted next master
    task", which the runtime exposes as ``effective_memory_view``.
    """
    if use_predictions:
        return np.asarray(ctx.effective_memory_view, dtype=np.float64)
    return np.asarray(ctx.memory_view, dtype=np.float64)
