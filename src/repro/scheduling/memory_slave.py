"""Algorithm 1: memory-based slave selection (Section 4, improved in 5.1).

The master sorts the candidate slaves by (believed) memory occupation and
chooses the smallest prefix that can absorb the rows of the front while
*levelling* the memory: each selected slave first receives enough rows to
bring it up to the level of the most loaded selected slave, and the remaining
rows are spread equally.  The metric is either the instantaneous memory
(Section 4) or the improved metric of Section 5.1 — instantaneous memory plus
the peak of the subtree currently being treated plus the predicted cost of
the next upper-layer master task.

Mirroring the ``ViewBank`` scalar/vector pattern, the selection has two
implementations: the default vectorized path gathers the candidate metrics
and locates the prefix with numpy array operations, and ``vectorized=False``
preserves the historical per-candidate Python loops as an executable
reference (``tests/test_engine_identity.py`` asserts they pick identical
assignments on randomized contexts).
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.base import SlaveSelectionContext, SlaveSelector
from repro.scheduling.prediction import selection_metric

__all__ = ["MemorySlaveSelector"]


class MemorySlaveSelector(SlaveSelector):
    """The paper's Algorithm 1.

    Parameters
    ----------
    use_predictions:
        ``False`` reproduces the plain Section 4 strategy (instantaneous
        memory only); ``True`` uses the Section 5.1 metric, which avoids
        giving slave work to processors about to start an expensive subtree
        or master task.
    vectorized:
        ``True`` (default) runs the numpy implementation; ``False`` keeps the
        historical per-candidate loops as the executable reference.
    row_unit:
        Memory-to-rows conversion follows the paper: a deficit of ``D``
        entries translates into ``D / nfront`` rows (one row of the front
        occupies ``nfront`` entries in the unsymmetric storage).
    """

    name = "memory"

    def __init__(self, *, use_predictions: bool = True, vectorized: bool = True):
        self.use_predictions = use_predictions
        self.vectorized = vectorized

    # ------------------------------------------------------------------ #
    def _metric(self, ctx: SlaveSelectionContext) -> np.ndarray:
        return selection_metric(ctx, use_predictions=self.use_predictions)

    def select(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if self.vectorized:
            return self._select_vectorized(ctx)
        return self._select_scalar(ctx)

    # ------------------------------------------------------------------ #
    # vectorized path (default)
    # ------------------------------------------------------------------ #
    def _select_vectorized(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if ctx.ncb <= 0:
            return []
        cand = np.asarray(ctx.candidates, dtype=np.int64)
        if cand.size == 0:
            return []
        metric = np.asarray(self._metric(ctx), dtype=np.float64)
        mem = metric[cand]
        order = np.argsort(mem, kind="stable")
        sorted_procs = cand[order]
        sorted_mem = mem[order]

        nfront = max(ctx.nfront, 1)
        # the "surface" to distribute: the slave part of the frontal matrix
        surface = float(ctx.ncb) * float(nfront)

        # Levelling cost of the prefix 1..i: sum(sorted_mem[i-1] - sorted_mem[:i]),
        # nondecreasing in i because the memories are sorted.  The closed form
        # below locates the boundary in one vectorized pass; the exact
        # summation (the reference expression, whose rounding can differ from
        # the closed form by an ulp) then settles the boundary itself.
        n = int(sorted_mem.size)

        def exact_cost(i: int) -> float:
            return float(np.sum(sorted_mem[i - 1] - sorted_mem[:i]))

        counts = np.arange(1, n + 1, dtype=np.float64)
        approx = counts * sorted_mem - np.cumsum(sorted_mem)
        violations = np.nonzero(approx > surface)[0]
        best = int(violations[0]) if violations.size else n
        if best < 1:
            best = 1
        while best < n and exact_cost(best + 1) <= surface:
            best += 1
        while best > 1 and exact_cost(best) > surface:
            best -= 1
        # granularity constraints
        max_by_rows = max(1, ctx.ncb // max(ctx.min_rows_per_slave, 1))
        best = min(best, ctx.max_slaves, max_by_rows)
        chosen = sorted_procs[:best]
        chosen_mem = sorted_mem[:best]
        level = chosen_mem[best - 1]
        return _level_rows(chosen, chosen_mem, level, nfront, ctx.ncb, best)

    # ------------------------------------------------------------------ #
    # scalar reference path (the historical implementation, verbatim)
    # ------------------------------------------------------------------ #
    def _select_scalar(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if ctx.ncb <= 0:
            return []
        candidates = [int(q) for q in ctx.candidates]
        if not candidates:
            return []
        metric = self._metric(ctx)
        mem = np.array([float(metric[q]) for q in candidates])
        order = np.argsort(mem, kind="stable")
        sorted_procs = [candidates[int(i)] for i in order]
        sorted_mem = mem[order]

        nfront = max(ctx.nfront, 1)
        surface = float(ctx.ncb) * float(nfront)

        # find the largest prefix 1..i whose levelling cost fits in the surface
        best = 1
        for i in range(1, len(sorted_procs) + 1):
            level = sorted_mem[i - 1]
            cost = float(np.sum(level - sorted_mem[:i]))
            if cost <= surface:
                best = i
            else:
                break
        max_by_rows = max(1, ctx.ncb // max(ctx.min_rows_per_slave, 1))
        best = min(best, ctx.max_slaves, max_by_rows)
        chosen = sorted_procs[:best]
        chosen_mem = sorted_mem[:best]
        level = chosen_mem[best - 1]
        return _level_rows(chosen, chosen_mem, level, nfront, ctx.ncb, best)


def _level_rows(chosen, chosen_mem, level, nfront, ncb, best) -> list[tuple[int, int]]:
    """Algorithm 1's levelling pass, shared by both implementations.

    Brings every selected slave up to the level of the most loaded selected
    one (in rows of the front), then spreads the remaining rows equitably.
    """
    rows = np.zeros(best, dtype=np.int64)
    remaining = ncb
    for j in range(best):
        deficit_rows = int((level - chosen_mem[j]) // nfront)
        give = min(deficit_rows, remaining)
        rows[j] = give
        remaining -= give
        if remaining == 0:
            break
    # remaining rows are assigned equitably
    j = 0
    while remaining > 0:
        rows[j % best] += 1
        remaining -= 1
        j += 1
    return [(int(q), int(r)) for q, r in zip(chosen, rows) if r > 0]
