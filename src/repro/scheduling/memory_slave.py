"""Algorithm 1: memory-based slave selection (Section 4, improved in 5.1).

The master sorts the candidate slaves by (believed) memory occupation and
chooses the smallest prefix that can absorb the rows of the front while
*levelling* the memory: each selected slave first receives enough rows to
bring it up to the level of the most loaded selected slave, and the remaining
rows are spread equally.  The metric is either the instantaneous memory
(Section 4) or the improved metric of Section 5.1 — instantaneous memory plus
the peak of the subtree currently being treated plus the predicted cost of
the next upper-layer master task.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.base import SlaveSelectionContext, SlaveSelector
from repro.scheduling.prediction import selection_metric

__all__ = ["MemorySlaveSelector"]


class MemorySlaveSelector(SlaveSelector):
    """The paper's Algorithm 1.

    Parameters
    ----------
    use_predictions:
        ``False`` reproduces the plain Section 4 strategy (instantaneous
        memory only); ``True`` uses the Section 5.1 metric, which avoids
        giving slave work to processors about to start an expensive subtree
        or master task.
    row_unit:
        Memory-to-rows conversion follows the paper: a deficit of ``D``
        entries translates into ``D / nfront`` rows (one row of the front
        occupies ``nfront`` entries in the unsymmetric storage).
    """

    name = "memory"

    def __init__(self, *, use_predictions: bool = True):
        self.use_predictions = use_predictions

    # ------------------------------------------------------------------ #
    def _metric(self, ctx: SlaveSelectionContext) -> np.ndarray:
        return selection_metric(ctx, use_predictions=self.use_predictions)

    def select(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if ctx.ncb <= 0:
            return []
        candidates = [int(q) for q in ctx.candidates]
        if not candidates:
            return []
        metric = self._metric(ctx)
        mem = np.array([float(metric[q]) for q in candidates])
        order = np.argsort(mem, kind="stable")
        sorted_procs = [candidates[int(i)] for i in order]
        sorted_mem = mem[order]

        nfront = max(ctx.nfront, 1)
        # the "surface" to distribute: the slave part of the frontal matrix
        surface = float(ctx.ncb) * float(nfront)

        # find the largest prefix 1..i whose levelling cost fits in the surface
        best = 1
        for i in range(1, len(sorted_procs) + 1):
            level = sorted_mem[i - 1]
            cost = float(np.sum(level - sorted_mem[:i]))
            if cost <= surface:
                best = i
            else:
                break
        # granularity constraints
        max_by_rows = max(1, ctx.ncb // max(ctx.min_rows_per_slave, 1))
        best = min(best, ctx.max_slaves, max_by_rows)
        chosen = sorted_procs[:best]
        chosen_mem = sorted_mem[:best]
        level = chosen_mem[best - 1]

        # levelling pass: bring every selected slave up to the level of the
        # most loaded selected one, in rows of the front
        rows = np.zeros(best, dtype=np.int64)
        remaining = ctx.ncb
        for j in range(best):
            deficit_rows = int((level - chosen_mem[j]) // nfront)
            give = min(deficit_rows, remaining)
            rows[j] = give
            remaining -= give
            if remaining == 0:
                break
        # remaining rows are assigned equitably
        j = 0
        while remaining > 0:
            rows[j % best] += 1
            remaining -= 1
            j += 1
        return [(q, int(r)) for q, r in zip(chosen, rows) if r > 0]
