"""Task selection in the local pool: LIFO baseline and Algorithm 2.

The pool of ready tasks is managed as a stack (Section 5.2, Figure 7): the
original MUMPS strategy always activates the task on top, which yields a
depth-first traversal of the tree.  Algorithm 2 keeps that behaviour inside
subtrees but, for upper-layer tasks, refuses to activate a task that would
push the processor's memory above the peak observed so far, preferring a
subtree task instead (Figure 8).
"""

from __future__ import annotations

from repro.scheduling.base import TaskSelectionContext, TaskSelector

__all__ = ["LifoTaskSelector", "FifoTaskSelector", "MemoryAwareTaskSelector"]


class LifoTaskSelector(TaskSelector):
    """Original MUMPS behaviour: always take the top of the stack."""

    name = "lifo"

    def select(self, ctx: TaskSelectionContext) -> int:
        if not ctx.pool:
            raise ValueError("cannot select from an empty pool")
        return len(ctx.pool) - 1


class FifoTaskSelector(TaskSelector):
    """Breadth-first variant (not used by the paper; kept for comparison).

    Processing the *oldest* ready task keeps many tree branches active at the
    same time, which is exactly what the paper warns against ("going too far
    from the depth-first traversal could ... increase the global memory
    usage"); the ablation benchmark uses it to quantify that warning.
    """

    name = "fifo"

    def select(self, ctx: TaskSelectionContext) -> int:
        if not ctx.pool:
            raise ValueError("cannot select from an empty pool")
        return 0


class MemoryAwareTaskSelector(TaskSelector):
    """The paper's Algorithm 2.

    1. If the task on top of the pool belongs to the subtree currently being
       processed, activate it (subtrees are memory-critical and must be
       finished depth-first).
    2. Otherwise scan the pool from the top: activate the first task whose
       memory cost added to the current memory (including the peak of the
       current subtree) does not exceed the peak observed since the beginning
       of the factorization; while scanning, any task that belongs to a
       subtree is taken immediately.
    3. If no task qualifies, fall back to the top of the pool.
    """

    name = "memory-aware"

    def select(self, ctx: TaskSelectionContext) -> int:
        if not ctx.pool:
            raise ValueError("cannot select from an empty pool")
        top = len(ctx.pool) - 1
        top_task = ctx.pool[top]
        if ctx.current_subtree >= 0 and top_task.in_subtree == ctx.current_subtree:
            return top
        current = ctx.current_memory + (
            ctx.current_subtree_peak if ctx.current_subtree >= 0 else 0.0
        )
        for index in range(top, -1, -1):
            task = ctx.pool[index]
            if task.memory_cost + current <= ctx.observed_peak:
                return index
            if task.in_subtree >= 0:
                return index
        return top
