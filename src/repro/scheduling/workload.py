"""MUMPS' original workload-based slave selection (the paper's baseline).

Section 3 of the paper: "each (master) processor tries to choose only the
processors less-loaded than itself, with some granularity constraints.  In
addition, the selection is done such that the amount of work given to the
slaves is as balanced as possible with the workload of the corresponding task
on the master."  The workload metric is the number of floating-point
operations still to be done.

Like :class:`~repro.scheduling.memory_slave.MemorySlaveSelector`, the
selection is vectorized by default (gathers and masks over the believed-load
array) and keeps the historical per-candidate loops under
``vectorized=False`` as the executable reference.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.base import SlaveSelectionContext, SlaveSelector

__all__ = ["WorkloadSlaveSelector"]


class WorkloadSlaveSelector(SlaveSelector):
    """Choose the least-loaded processors and balance the rows among them."""

    name = "workload"

    def __init__(self, *, proportional: bool = True, vectorized: bool = True):
        #: distribute rows inversely proportionally to the believed loads
        #: (``True``) or in equal shares (``False``)
        self.proportional = proportional
        self.vectorized = vectorized

    def select(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if self.vectorized:
            return self._select_vectorized(ctx)
        return self._select_scalar(ctx)

    # ------------------------------------------------------------------ #
    # vectorized path (default)
    # ------------------------------------------------------------------ #
    def _select_vectorized(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if ctx.ncb <= 0:
            return []
        cand = np.asarray(ctx.candidates, dtype=np.int64)
        if cand.size == 0:
            return []
        load_view = np.asarray(ctx.load_view, dtype=np.float64)
        loads = load_view[cand]
        order = np.argsort(loads, kind="stable")
        sorted_procs = cand[order]

        # prefer processors strictly less loaded than the master
        less_loaded_mask = loads[order] < ctx.own_load
        chosen_pool = sorted_procs[less_loaded_mask] if less_loaded_mask.any() else sorted_procs

        # granularity constraints: each slave must receive a useful amount of
        # rows, and the number of slaves is bounded
        max_by_rows = max(1, ctx.ncb // max(ctx.min_rows_per_slave, 1))
        nslaves = min(int(chosen_pool.size), ctx.max_slaves, max_by_rows)
        chosen = chosen_pool[:nslaves]

        if self.proportional:
            # fewer rows to more-loaded slaves: weights are the load gaps to
            # the most loaded candidate plus one row to keep weights positive
            gaps = np.maximum(float(np.max(load_view)) - load_view[chosen], 0.0) + 1.0
            weights = gaps / gaps.sum()
        else:
            weights = np.full(len(chosen), 1.0 / len(chosen))
        return _spread_rows(chosen, weights, ctx.ncb)

    # ------------------------------------------------------------------ #
    # scalar reference path (the historical implementation, verbatim)
    # ------------------------------------------------------------------ #
    def _select_scalar(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if ctx.ncb <= 0:
            return []
        candidates = [int(q) for q in ctx.candidates]
        if not candidates:
            return []
        loads = np.array([float(ctx.load_view[q]) for q in candidates])
        order = np.argsort(loads, kind="stable")

        less_loaded = [candidates[int(i)] for i in order if loads[int(i)] < ctx.own_load]
        chosen_pool = less_loaded if less_loaded else [candidates[int(i)] for i in order]

        max_by_rows = max(1, ctx.ncb // max(ctx.min_rows_per_slave, 1))
        nslaves = min(len(chosen_pool), ctx.max_slaves, max_by_rows)
        chosen = chosen_pool[:nslaves]

        if self.proportional:
            gaps = np.array([max(float(np.max(ctx.load_view)) - float(ctx.load_view[q]), 0.0) + 1.0 for q in chosen])
            weights = gaps / gaps.sum()
        else:
            weights = np.full(len(chosen), 1.0 / len(chosen))
        return _spread_rows(chosen, weights, ctx.ncb)


def _spread_rows(chosen, weights: np.ndarray, ncb: int) -> list[tuple[int, int]]:
    """Weighted row distribution shared by both implementations."""
    rows = np.floor(weights * ncb).astype(int)
    # distribute the remainder one row at a time to the least loaded
    remainder = ncb - int(rows.sum())
    k = 0
    nchosen = len(chosen)
    while remainder > 0 and nchosen:
        rows[k % nchosen] += 1
        remainder -= 1
        k += 1
    return [(int(q), int(r)) for q, r in zip(chosen, rows) if r > 0]
