"""MUMPS' original workload-based slave selection (the paper's baseline).

Section 3 of the paper: "each (master) processor tries to choose only the
processors less-loaded than itself, with some granularity constraints.  In
addition, the selection is done such that the amount of work given to the
slaves is as balanced as possible with the workload of the corresponding task
on the master."  The workload metric is the number of floating-point
operations still to be done.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.base import SlaveSelectionContext, SlaveSelector

__all__ = ["WorkloadSlaveSelector"]


class WorkloadSlaveSelector(SlaveSelector):
    """Choose the least-loaded processors and balance the rows among them."""

    name = "workload"

    def __init__(self, *, proportional: bool = True):
        #: distribute rows inversely proportionally to the believed loads
        #: (``True``) or in equal shares (``False``)
        self.proportional = proportional

    def select(self, ctx: SlaveSelectionContext) -> list[tuple[int, int]]:
        if ctx.ncb <= 0:
            return []
        candidates = [int(q) for q in ctx.candidates]
        if not candidates:
            return []
        loads = np.array([float(ctx.load_view[q]) for q in candidates])
        order = np.argsort(loads, kind="stable")

        # prefer processors strictly less loaded than the master
        less_loaded = [candidates[int(i)] for i in order if loads[int(i)] < ctx.own_load]
        chosen_pool = less_loaded if less_loaded else [candidates[int(i)] for i in order]

        # granularity constraints: each slave must receive a useful amount of
        # rows, and the number of slaves is bounded
        max_by_rows = max(1, ctx.ncb // max(ctx.min_rows_per_slave, 1))
        nslaves = min(len(chosen_pool), ctx.max_slaves, max_by_rows)
        chosen = chosen_pool[:nslaves]

        if self.proportional:
            # fewer rows to more-loaded slaves: weights are the load gaps to
            # the most loaded candidate plus one row to keep weights positive
            gaps = np.array([max(float(np.max(ctx.load_view)) - float(ctx.load_view[q]), 0.0) + 1.0 for q in chosen])
            weights = gaps / gaps.sum()
        else:
            weights = np.full(len(chosen), 1.0 / len(chosen))
        rows = np.floor(weights * ctx.ncb).astype(int)
        # distribute the remainder one row at a time to the least loaded
        remainder = ctx.ncb - int(rows.sum())
        k = 0
        while remainder > 0 and chosen:
            rows[k % len(chosen)] += 1
            remainder -= 1
            k += 1
        return [(q, int(r)) for q, r in zip(chosen, rows) if r > 0]
