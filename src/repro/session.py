"""The :class:`Session` façade: declarative scenario runs over one engine.

A session owns an :class:`~repro.pipeline.engine.AnalysisPipeline` (the
content-addressed artifact store) and a lazily started
:class:`~repro.pipeline.executor.SweepExecutor` (long-lived worker processes
when ``jobs > 1``).  Everything it runs is declared as plain data — a
:class:`~repro.pipeline.stage.CaseSpec`, a dict, or a
:class:`~repro.specs.SweepSpec` grid — so the same session serves one-off
comparisons, the paper's tables and machine-scale sweeps that vary strategy
parameters *and* processor counts in a single call::

    with repro.open_session(nprocs=32, scale=0.5, jobs=4) as session:
        results = session.sweep(
            problems=["XENON2", "PRE2"],
            strategies=["hybrid(alpha=0.25)", "hybrid(alpha=0.5)", "hybrid(alpha=0.75)"],
            nprocs=[8, 16, 32],
        )
        payload = [r.to_dict() for r in results]       # JSON-ready

Results come back in grid order whatever the execution order was, so serial
and parallel runs are bit-identical.  The historical
:class:`~repro.experiments.runner.ExperimentRunner` is a thin shim over this
class.
"""

from __future__ import annotations

import os
from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.pipeline import (
    AnalysisPipeline,
    AnalysisProducts,
    CaseResult,
    CaseSpec,
    ProgressEvent,
    SweepExecutor,
)
from repro.results import CaseResultView, ResultStore, ResultTable, case_key_for
from repro.runtime import SimulationConfig
from repro.specs import SweepSpec

__all__ = ["Session", "open_session", "percentage_decrease", "CaseLike"]


def percentage_decrease(baseline: float, improved: float) -> float:
    """Percentage decrease of ``improved`` with respect to ``baseline``.

    Positive values mean the improved strategy uses *less* memory, matching
    the sign convention of Tables 2, 3 and 5 of the paper.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline

#: Anything :meth:`Session.run` accepts as one case.
CaseLike = Union[CaseSpec, Mapping[str, object]]


def _as_spec(case: CaseLike) -> CaseSpec:
    if isinstance(case, CaseSpec):
        return case
    if isinstance(case, Mapping):
        return CaseSpec.from_dict(case)
    raise TypeError(f"expected a CaseSpec or a mapping, got {type(case).__name__}")


class Session:
    """Run declarative scenario specs against one shared engine.

    Parameters
    ----------
    nprocs:
        Default number of simulated processors (cases may override).
    scale:
        Default problem scale factor (cases may override).
    config:
        Base :class:`SimulationConfig`; ``nprocs`` is overridden by the
        session's value.  Defaults to :meth:`SimulationConfig.paper`.
    cache_dir:
        Directory for the on-disk artifact store (``None`` honours the
        ``REPRO_CACHE_DIR`` environment variable, ``""`` disables it).
    jobs:
        Default number of worker processes (1 = serial, in-process).
    progress:
        Optional per-case callback (receives a
        :class:`~repro.pipeline.ProgressEvent`).
    """

    def __init__(
        self,
        *,
        nprocs: int = 32,
        scale: float = 1.0,
        config: SimulationConfig | None = None,
        cache_dir: str | os.PathLike | None = None,
        amalgamation_relax: float = 0.15,
        amalgamation_min_pivots: int = 4,
        jobs: int = 1,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        self.engine = AnalysisPipeline(
            nprocs=nprocs,
            scale=scale,
            config=config,
            cache_dir=cache_dir,
            amalgamation_relax=amalgamation_relax,
            amalgamation_min_pivots=amalgamation_min_pivots,
        )
        self.jobs = int(jobs)
        self.progress = progress
        self._executor: Optional[SweepExecutor] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the sweep worker pool, if one was started.

        Idempotent and exception-safe: the executor reference is dropped
        *before* its shutdown runs, so a second ``close()`` (or the context
        manager exiting after an explicit close, or an executor whose pool
        already shut down underneath us) is always a no-op rather than a
        second shutdown attempt on a dead pool.
        """
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()

    @property
    def closed(self) -> bool:
        """Whether no worker pool is currently held (a run may start one)."""
        return self._executor is None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # cached pipeline stages (convenience passthroughs)
    # ------------------------------------------------------------------ #
    def pattern(self, problem: str):
        return self.engine.pattern(problem)

    def ordering(self, problem: str, ordering: str) -> np.ndarray:
        return self.engine.ordering(problem, ordering)

    def analysis(self, problem: str, ordering: str, *, split: bool = False) -> AnalysisProducts:
        """Pattern → ordering → assembly tree → (splitting) → static mapping."""
        return self.engine.analysis(problem, ordering, split=split)

    # ------------------------------------------------------------------ #
    # cases
    # ------------------------------------------------------------------ #
    def run(self, case: CaseLike) -> CaseResult:
        """Run one declarative case (a :class:`CaseSpec` or its dict form)."""
        return self.engine.run_case(_as_spec(case))

    def run_cases(
        self,
        cases: Sequence[CaseLike],
        *,
        jobs: int | None = None,
        batch: bool = False,
        on_result: Optional[Callable[[int, CaseSpec, CaseResult], None]] = None,
    ) -> list[CaseResult]:
        """Run explicit cases (serially or across a process pool, see ``jobs``).

        Runs at the session's own job count share one long-lived executor, so
        consecutive sweeps reuse the same worker processes and the artifacts
        they hold; an explicit ``jobs`` override gets a transient executor
        that is torn down afterwards.

        ``batch=True`` instead runs everything serially in-process, grouping
        cases that share an analysis so they reuse one precomputed scheduling
        geometry and view bank (:meth:`AnalysisPipeline.run_cases_batched`) —
        the fastest path for strategy sweeps over few analyses.  ``jobs`` is
        ignored in batch mode.

        ``on_result(index, spec, result)`` is called in this process as each
        case completes (execution order); in batch mode the whole batch
        completes together, so the callback fires after it, in input order.
        """
        specs = [_as_spec(case) for case in cases]
        if batch:
            results = self.engine.run_cases_batched(specs)
            if on_result is not None:
                for i, (spec, result) in enumerate(zip(specs, results)):
                    on_result(i, spec, result)
            return results
        jobs = self.jobs if jobs is None else int(jobs)
        if jobs == self.jobs:
            if self._executor is None:
                self._executor = SweepExecutor(self.engine, jobs=jobs, progress=self.progress)
            return self._executor.run(specs, on_result=on_result)
        with SweepExecutor(self.engine, jobs=jobs, progress=self.progress) as executor:
            return executor.run(specs, on_result=on_result)

    def sweep(
        self,
        spec: SweepSpec | Mapping[str, object] | None = None,
        *,
        jobs: int | None = None,
        batch: bool = False,
        store: "ResultStore | str | os.PathLike | None" = None,
        **axes,
    ) -> CaseResultView:
        """Run a declarative grid and return its results in grid order.

        Accepts a :class:`~repro.specs.SweepSpec`, its dict form, or the
        axes directly as keyword arguments::

            session.sweep(problems=["XENON2"], strategies=["hybrid(alpha=0.25)"],
                          nprocs=[8, 16, 32])

        Results come back in grid order (problem-major, see
        :meth:`SweepSpec.expand`) whatever the execution order was, so the
        parallel path is a drop-in for the serial one.

        A ``faults`` axis (fault specs, see :mod:`repro.faults`) turns cases
        into replicated fault studies: each faulted case runs a clean
        baseline plus ``replications`` seeded faulted replays and its
        :class:`CaseResult` carries the fault summary (``makespan_p50`` /
        ``makespan_p95``, ``degradation``, ``messages_lost``, ``retries``).
        The same ``(faults, fault_seed)`` pair always reproduces
        byte-identical results — see ``docs/robustness.md``.  ``batch=True`` runs
        the grid in-process with per-analysis batching (see
        :meth:`run_cases`) — usually the fastest option when the grid sweeps
        many strategies over few problems.

        ``store`` (a :class:`~repro.results.ResultStore` or its directory)
        makes the sweep *resumable*: cases whose canonical key is already in
        the store are answered from it without touching the engine, and every
        freshly computed case streams into the store the moment it completes
        — interrupt the sweep anywhere and a rerun recomputes only what is
        missing.

        The return value is a :class:`~repro.results.CaseResultView`, a lazy
        sequence over a columnar :class:`~repro.results.ResultTable` that
        iterates, indexes and slices exactly like the ``list[CaseResult]``
        this method used to return (``.table`` exposes the columns).
        """
        if spec is None:
            sweep_spec = SweepSpec(**axes)
        else:
            if axes:
                raise TypeError("pass either a SweepSpec/dict or keyword axes, not both")
            sweep_spec = spec if isinstance(spec, SweepSpec) else SweepSpec.from_dict(spec)
        specs = sweep_spec.expand()
        keys = [case_key_for(self.engine, s) for s in specs]

        if store is None:
            results = self.run_cases(specs, jobs=jobs, batch=batch)
            table = ResultTable.from_results(results, keys=keys)
            return CaseResultView(table, computed=len(results), skipped=0)

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        cached: dict[str, CaseResult] = {}
        pending_specs: list[CaseSpec] = []
        pending_keys: list[str] = []
        seen: set[str] = set()
        for case_spec, key in zip(specs, keys):
            if key in store:
                if key not in cached:
                    cached[key] = store.get(key)
            elif key not in seen:
                # grids can repeat a logical case (e.g. the same strategy
                # spelled two canonically-equal ways): compute it once
                seen.add(key)
                pending_specs.append(case_spec)
                pending_keys.append(key)
        computed: dict[str, CaseResult] = {}
        if pending_specs:
            # flush_every=1: each completed case is durable before the next
            # one starts, so an interrupt loses at most the case in flight
            with store.writer(flush_every=1) as writer:

                def _persist(index: int, _spec: CaseSpec, result: CaseResult) -> None:
                    writer.append(pending_keys[index], result)
                    computed[pending_keys[index]] = result

                self.run_cases(pending_specs, jobs=jobs, batch=batch, on_result=_persist)
        ordered = [cached[key] if key in cached else computed[key] for key in keys]
        table = ResultTable.from_results(ordered, keys=keys)
        return CaseResultView(table, computed=len(computed), skipped=len(cached))

    def compare(
        self,
        problem: str,
        ordering: str = "metis",
        *,
        baseline: str = "mumps-workload",
        candidate: str = "memory-full",
        split_baseline: bool = False,
        split_candidate: bool = False,
    ) -> dict[str, float]:
        """Percentage decrease of the max stack peak of ``candidate`` vs ``baseline``."""
        base, cand = self.run_cases(
            [
                CaseSpec(problem, ordering, baseline, split=split_baseline),
                CaseSpec(problem, ordering, candidate, split=split_candidate),
            ]
        )
        return {
            "baseline_peak": base.max_peak_stack,
            "candidate_peak": cand.max_peak_stack,
            "gain_percent": percentage_decrease(base.max_peak_stack, cand.max_peak_stack),
            "baseline_time": base.total_time,
            "candidate_time": cand.total_time,
            "time_loss_percent": (
                100.0 * (cand.total_time - base.total_time) / base.total_time
                if base.total_time > 0
                else 0.0
            ),
        }

    # ------------------------------------------------------------------ #
    # engine attribute passthroughs
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SimulationConfig:
        return self.engine.config

    @property
    def nprocs(self) -> int:
        return self.engine.nprocs

    @property
    def scale(self) -> float:
        return self.engine.scale


def open_session(**kwargs) -> Session:
    """Open a :class:`Session` (use as a context manager to release workers).

    Keyword arguments are those of :class:`Session`; the common ones are
    ``nprocs``, ``scale``, ``cache_dir`` and ``jobs``.
    """
    return Session(**kwargs)
