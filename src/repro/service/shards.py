"""Sharded sweep execution behind a multi-host-ready backend interface.

A job's expanded case list is partitioned into *shards* by the cases'
analysis signature (problem, ordering, split, per-case overrides) — the same
mapping/geometry key the batched simulator groups by — so every shard shares
one precomputed analysis and runs through the fastest available path
(:meth:`AnalysisPipeline.run_cases_batched` in-process, or a worker of the
long-lived process pool).

:class:`ShardBackend` is the seam for scaling out: it consumes plain
:class:`~repro.pipeline.stage.CaseSpec` values and returns
:class:`~repro.pipeline.stage.CaseResult` values, with the engine described
by the picklable :class:`~repro.pipeline.engine.PipelineSettings` — exactly
the payload a multi-host backend would ship over the wire.  Two local
implementations are provided; a remote one only has to implement
:meth:`run_shard`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from repro.pipeline.engine import AnalysisPipeline
from repro.pipeline.executor import WorkerCrashError, _init_worker, _run_group
from repro.pipeline.stage import CaseResult, CaseSpec

__all__ = [
    "ShardTimeout",
    "WorkerCrashError",
    "partition_shards",
    "ShardBackend",
    "InlineShardBackend",
    "ProcessShardBackend",
]


class ShardTimeout(TimeoutError):
    """A shard exceeded the job's wall-clock deadline."""


def partition_shards(
    specs: Sequence[CaseSpec], *, max_shard_size: Optional[int] = None
) -> list[list[tuple[int, CaseSpec]]]:
    """Partition ``(index, spec)`` pairs into analysis-sharing shards.

    Cases are grouped by :meth:`CaseSpec.analysis_signature` (the
    mapping/geometry key), preserving first-seen group order and in-group
    input order; groups larger than ``max_shard_size`` are chunked.  The
    indices let the caller reassemble results in input order whatever the
    execution order was.
    """
    if max_shard_size is not None and max_shard_size < 1:
        raise ValueError(f"max_shard_size must be >= 1, got {max_shard_size}")
    groups: dict[tuple, list[tuple[int, CaseSpec]]] = {}
    for index, spec in enumerate(specs):
        groups.setdefault(spec.analysis_signature(), []).append((index, spec))
    shards: list[list[tuple[int, CaseSpec]]] = []
    for group in groups.values():
        if max_shard_size is None:
            shards.append(group)
        else:
            shards.extend(
                group[i : i + max_shard_size] for i in range(0, len(group), max_shard_size)
            )
    return shards


class ShardBackend(ABC):
    """Execute one shard of cases; the seam for multi-host scale-out."""

    @abstractmethod
    def run_shard(
        self, specs: Sequence[CaseSpec], *, timeout_s: Optional[float] = None
    ) -> list[CaseResult]:
        """Run ``specs`` and return their results in input order.

        ``timeout_s`` is a best-effort wall-clock bound; backends that can
        observe it raise :class:`ShardTimeout` when it elapses.
        """

    def close(self) -> None:
        """Release backend resources (idempotent)."""


class InlineShardBackend(ShardBackend):
    """Run shards in-process through the batched simulation path.

    The fastest option when the daemon owns the only engine: every shard
    shares one precomputed scheduling geometry and view bank
    (:meth:`AnalysisPipeline.run_cases_batched`).  ``timeout_s`` cannot
    preempt in-process work; the daemon checks the deadline between shards.
    """

    def __init__(self, engine: AnalysisPipeline) -> None:
        self.engine = engine

    def run_shard(
        self, specs: Sequence[CaseSpec], *, timeout_s: Optional[float] = None
    ) -> list[CaseResult]:
        return self.engine.run_cases_batched(list(specs))


class ProcessShardBackend(ShardBackend):
    """Run shards on a long-lived process pool (one engine per worker).

    Workers are initialised once from the engine's picklable settings and
    keep their artifact stores across shards — the same discipline as the
    sweep executor.  ``timeout_s`` is enforced via the future: on expiry the
    shard is abandoned (the worker finishes in the background; its results
    simply go unused) and :class:`ShardTimeout` is raised.
    """

    def __init__(self, engine: AnalysisPipeline, *, jobs: int = 2) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.engine = engine
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(self.engine.settings(),),
            )
        return self._pool

    def run_shard(
        self, specs: Sequence[CaseSpec], *, timeout_s: Optional[float] = None
    ) -> list[CaseResult]:
        try:
            future = self._ensure_pool().submit(_run_group, list(enumerate(specs)))
            triples = future.result(timeout=timeout_s)
        except FutureTimeoutError:
            future.cancel()
            raise ShardTimeout(
                f"shard of {len(specs)} case(s) exceeded {timeout_s:.1f}s"
            ) from None
        except BrokenProcessPool as exc:
            # a worker died (OOM-kill, SIGKILL, hard crash): drop the dead
            # pool so the next attempt starts a fresh one, and surface the
            # shard as a retryable failure — the daemon's retry loop counts
            # it toward the job's max_attempts like any other shard error
            self.close()
            raise WorkerCrashError(
                f"worker process died while running a shard of {len(specs)} case(s)"
            ) from exc
        results: list[Optional[CaseResult]] = [None] * len(specs)
        for index, result, _seconds in triples:
            results[index] = result
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
