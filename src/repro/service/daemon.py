"""The long-lived sweep service: queue, shards, cache, one engine.

:class:`SweepService` is the daemon behind ``repro serve``.  It owns

* a journal-backed :class:`~repro.service.jobs.JobQueue` (crash-safe, see
  that module),
* worker thread(s) that claim jobs, partition them into analysis-sharing
  shards (:func:`~repro.service.shards.partition_shards`) and execute them
  through a :class:`~repro.service.shards.ShardBackend` with per-shard
  retry-with-backoff and a per-job wall-clock timeout,
* a :class:`~repro.service.cache.CacheStore` of finished case results keyed
  by canonical case parameters (:func:`result_key`) — the read-mostly side
  every ``GET /results`` query hits first,
* one :class:`~repro.experiments.runner.ExperimentRunner` session whose
  engine also answers cache-missing queries and table requests inline
  (serialised by a lock, so HTTP threads and job workers never race the
  engine).

The engine's ``stage_runs`` counters are exposed through :meth:`stats`;
they only move when a pipeline stage actually computes, which is how the
tests (and the acceptance criteria) prove that a repeated query was served
from the cache rather than re-executed.
"""

from __future__ import annotations

import os
import re
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.pipeline.stage import CaseResult, CaseSpec
from repro.pipeline.store import content_key
from repro.results import ResultStore, case_key_for
from repro.service.cache import CacheStore
from repro.service.jobs import JobQueue, JobRecord, JobSpec
from repro.service.shards import (
    InlineShardBackend,
    ProcessShardBackend,
    ShardBackend,
    ShardTimeout,
    partition_shards,
)
from repro.specs import parse_spec

__all__ = [
    "QueryOutcome",
    "QueueSaturated",
    "SweepService",
    "result_key",
    "case_spec_from_query",
]


class QueueSaturated(RuntimeError):
    """The job queue is at its ``max_pending`` depth; resubmit later.

    The HTTP layer maps this to ``503`` with a ``Retry-After`` header, so
    well-behaved clients back off instead of growing the journal without
    bound while the workers are behind.
    """

    def __init__(self, message: str, *, retry_after: float = 5.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after

#: schema version of the cached *table* payloads; bump to invalidate them all.
_RESULT_VERSION = "1"


def result_key(engine, spec: CaseSpec) -> str:
    """Content-addressed cache key of one case's *result* payload.

    The canonical case key (see :mod:`repro.results.keys` — this is a thin
    delegate kept for backwards compatibility): canonical case parameters
    with the engine defaults bound in, so the same logical query always
    lands on the same key whether it arrives spelled out or relying on
    defaults — and two engines with different defaults never collide.
    """
    return case_key_for(engine, spec)


def case_spec_from_query(params: Mapping[str, str]) -> CaseSpec:
    """Build a canonical :class:`CaseSpec` from raw (string) query params.

    Raises ``ValueError`` with a client-presentable message on bad input.
    """
    known = {"problem", "ordering", "strategy", "split", "nprocs", "scale", "split_threshold"}
    unknown = set(params) - known - {"compute"}
    if unknown:
        raise ValueError(f"unknown query parameter(s) {sorted(unknown)}; expected {sorted(known)}")
    problem = params.get("problem", "").strip()
    if not problem:
        raise ValueError("missing required query parameter 'problem'")

    def _bool(name: str, default: bool = False) -> bool:
        raw = params.get(name)
        if raw is None:
            return default
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"query parameter {name!r} expects a boolean, got {raw!r}")

    def _num(name: str, caster):
        raw = params.get(name)
        if raw is None or not raw.strip():
            return None
        try:
            return caster(raw)
        except ValueError:
            raise ValueError(
                f"query parameter {name!r} expects {caster.__name__}, got {raw!r}"
            ) from None

    return CaseSpec(
        problem=problem.upper(),
        ordering=str(parse_spec(params.get("ordering", "metis"))),
        strategy=str(parse_spec(params.get("strategy", "memory-full"))),
        split=_bool("split"),
        nprocs=_num("nprocs", int),
        scale=_num("scale", float),
        split_threshold=_num("split_threshold", int),
    )


@dataclass
class QueryOutcome:
    """One answered result query: the payload, its key, and how it was served."""

    key: str
    payload: dict[str, object]
    cached: bool


class SweepService:
    """The daemon: job queue + sharded execution + shared result cache.

    Parameters
    ----------
    data_dir:
        Service state directory; holds ``journal.jsonl`` (the job journal)
        and ``results/`` (the shared result cache).
    nprocs / scale / artifact_cache_dir:
        Engine defaults, as for :class:`~repro.session.Session`
        (``artifact_cache_dir=""`` keeps the artifact disk tier off).
    jobs:
        Shard execution width: ``1`` runs shards in-process through the
        batched engine path, ``> 1`` uses a long-lived process pool.
    workers:
        Job worker threads draining the queue (each runs one job at a time).
    shard_size:
        Maximum cases per shard (``None`` = one shard per analysis group).
    ttl_s / max_entries / max_bytes:
        Result-cache policy, see :class:`~repro.service.cache.CacheStore`.
    retry_base_delay:
        First retry backoff in seconds (doubles per attempt).
    journal_fsync:
        ``False`` trades crash-safety for faster job turnover (tests, CI).
    max_pending:
        Backpressure bound on the queue depth: a submission arriving while
        ``queued >= max_pending`` raises :class:`QueueSaturated` (HTTP 503
        with ``Retry-After``).  ``None`` (the default) never rejects.
    """

    def __init__(
        self,
        *,
        data_dir: str | os.PathLike,
        nprocs: int = 32,
        scale: float = 1.0,
        artifact_cache_dir: str | os.PathLike | None = "",
        jobs: int = 1,
        workers: int = 1,
        shard_size: Optional[int] = None,
        ttl_s: Optional[float] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        retry_base_delay: float = 0.1,
        journal_fsync: bool = True,
        max_pending: Optional[int] = None,
        backend: Optional[ShardBackend] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        from repro.experiments.runner import ExperimentRunner  # lazy: import cycle hygiene

        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.session = ExperimentRunner(
            nprocs=nprocs, scale=scale, cache_dir=artifact_cache_dir, jobs=1
        )
        self.engine = self.session.engine
        self.cache = CacheStore(
            self.data_dir / "results",
            ttl_s=ttl_s,
            max_entries=max_entries,
            max_bytes=max_bytes,
        )
        self.queue = JobQueue(self.data_dir / "journal.jsonl", fsync=journal_fsync)
        # the columnar store behind GET /results: every finished case —
        # sweep shard or inline query — is appended here as well as cached
        self.results = ResultStore(self.data_dir / "store", fsync=journal_fsync)
        if backend is not None:
            self.backend = backend
        elif jobs > 1:
            self.backend = ProcessShardBackend(self.engine, jobs=jobs)
        else:
            self.backend = InlineShardBackend(self.engine)
        self.jobs = jobs
        self.workers = workers
        self.shard_size = shard_size
        self.max_pending = max_pending
        self.retry_base_delay = retry_base_delay
        self.started_at = time.time()
        self._engine_lock = threading.RLock()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SweepService":
        """Start the job worker threads (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-sweep-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, *, timeout: float = 30.0) -> None:
        """Stop the workers and release the engine/backend (idempotent)."""
        self._stop.set()
        self.queue.wake()
        threads, self._threads = self._threads, []
        for thread in threads:
            thread.join(timeout=timeout)
        self.backend.close()
        self.session.close()
        self.results.flush()

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # submission and queries (HTTP-facing)
    # ------------------------------------------------------------------ #
    def queue_depth(self) -> int:
        """Jobs waiting to be claimed (the backpressure signal)."""
        return int(self.queue.counts()["queued"])

    def saturated(self) -> bool:
        """Whether a submission arriving now would be rejected."""
        return self.max_pending is not None and self.queue_depth() >= self.max_pending

    def submit(self, spec: JobSpec | Mapping[str, object]) -> JobRecord:
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_dict(spec)
        # validate the spec *before* the saturation check: a malformed
        # submission should always say 400, not sometimes 503
        if self.saturated():
            raise QueueSaturated(
                f"job queue is saturated ({self.queue_depth()} queued >= "
                f"max_pending={self.max_pending}); retry later"
            )
        return self.queue.submit(spec)

    def query(self, params: Mapping[str, str], *, compute: bool = True) -> QueryOutcome:
        """Answer one result query, cache-first.

        On a cache hit the engine is never touched.  On a miss the case runs
        inline (under the engine lock) and its payload is cached before the
        response — so the *next* identical query, from any thread, is a hit.
        Raises ``KeyError`` when ``compute=False`` and the result is absent.
        """
        spec = case_spec_from_query(params)
        key = result_key(self.engine, spec)
        try:
            payload = self.cache.get(key)
            return QueryOutcome(key=key, payload=payload, cached=True)  # type: ignore[arg-type]
        except KeyError:
            if not compute:
                raise
        with self._engine_lock:
            result = self.engine.run_case(spec)
        payload = result.to_dict()
        self.cache.put(key, payload)
        self.results.append(key, result)
        return QueryOutcome(key=key, payload=payload, cached=False)

    #: every query parameter GET /results (the list form) understands.
    LIST_PARAMS = ("problem", "ordering", "strategy", "split", "nprocs", "limit", "cursor", "fields")
    #: pagination bounds of the list endpoint.
    DEFAULT_PAGE = 50
    MAX_PAGE = 500

    def list_results(self, params: Mapping[str, str]) -> dict[str, object]:
        """Answer one paginated ``GET /results`` listing from the columnar store.

        Filters (``problem``/``ordering``/``strategy``/``split``/``nprocs``)
        are canonicalised exactly like single-result queries, evaluated on
        the store's columns; rows come back in the canonical total order
        (see :meth:`ResultTable.sort_index`) so the same store state always
        yields byte-identical pages.  ``limit``/``cursor`` paginate;
        ``fields`` projects each row onto a comma-separated subset.  The
        payload carries a ready-made ``next`` link (or ``None`` on the last
        page).  Raises ``ValueError`` with a client-presentable message on
        bad input.
        """
        unknown = set(params) - set(self.LIST_PARAMS)
        if unknown:
            raise ValueError(
                f"unknown query parameter(s) {sorted(unknown)}; expected {sorted(self.LIST_PARAMS)}"
            )

        def _int(name: str, default: int) -> int:
            raw = params.get(name)
            if raw is None or not raw.strip():
                return default
            try:
                return int(raw)
            except ValueError:
                raise ValueError(f"query parameter {name!r} expects int, got {raw!r}") from None

        limit = _int("limit", self.DEFAULT_PAGE)
        if not 1 <= limit <= self.MAX_PAGE:
            raise ValueError(f"limit must be in [1, {self.MAX_PAGE}], got {limit}")
        cursor = _int("cursor", 0)
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        fields = None
        if params.get("fields"):
            fields = [f.strip() for f in str(params["fields"]).split(",") if f.strip()]

        filters: dict[str, object] = {}
        if params.get("problem"):
            filters["problem"] = str(params["problem"]).strip().upper()
        for name in ("ordering", "strategy"):
            if params.get(name):
                filters[name] = str(parse_spec(str(params[name])))
        if params.get("split") is not None:
            lowered = str(params["split"]).strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                filters["split"] = True
            elif lowered in ("0", "false", "no", "off"):
                filters["split"] = False
            else:
                raise ValueError(f"query parameter 'split' expects a boolean, got {params['split']!r}")
        if params.get("nprocs"):
            filters["nprocs"] = _int("nprocs", 0)

        self.results.flush()
        self.results.refresh()
        table = self.results.table()
        if filters:
            table = table.filter(**filters)
        table = table.sorted()
        total = len(table)
        stop = min(cursor + limit, total)
        page = table.take(np.arange(cursor, stop, dtype=np.int64))
        rows = page.to_dicts(fields=fields)

        def _link(next_cursor: int) -> str:
            from urllib.parse import urlencode

            query: dict[str, object] = {
                name: params[name] for name in ("problem", "ordering", "strategy", "split", "nprocs")
                if params.get(name)
            }
            query["limit"] = limit
            query["cursor"] = next_cursor
            if fields:
                query["fields"] = ",".join(fields)
            return "/results?" + urlencode(sorted(query.items()))

        return {
            "results": rows,
            "count": len(rows),
            "total": total,
            "cursor": cursor,
            "limit": limit,
            "next": _link(stop) if stop < total else None,
        }

    def table(self, name: str, *, problems: Sequence[str] = (), orderings: Sequence[str] = ()) -> QueryOutcome:
        """One of the paper's tables, cache-first (same discipline as results)."""
        from repro.experiments.tables import ALL_TABLES

        entry = ALL_TABLES.entry(name)  # raises ValueError (with did-you-mean) on a miss
        kwargs: dict[str, object] = {}
        if problems:
            if "problems" not in entry.params:
                raise ValueError(f"table {name!r} does not accept a problem subset")
            kwargs["problems"] = [p.upper() for p in problems]
        if orderings:
            if "orderings" not in entry.params:
                raise ValueError(f"table {name!r} does not accept an ordering subset")
            kwargs["orderings"] = [str(parse_spec(o)) for o in orderings]
        key = content_key(
            "table",
            _RESULT_VERSION,
            {
                "name": name,
                "nprocs": self.engine.nprocs,
                "scale": self.engine.scale,
                **{k: tuple(v) for k, v in kwargs.items()},  # type: ignore[arg-type]
            },
        )
        try:
            payload = self.cache.get(key)
            return QueryOutcome(key=key, payload=payload, cached=True)  # type: ignore[arg-type]
        except KeyError:
            pass
        with self._engine_lock:
            rows = entry.value(self.session, **kwargs)
        payload = {"table": name, "rows": rows}
        self.cache.put(key, payload)
        return QueryOutcome(key=key, payload=payload, cached=False)

    def stats(self) -> dict[str, object]:
        """The ``/healthz`` payload: liveness, queue, cache and engine counters."""
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "engine": {
                "nprocs": self.engine.nprocs,
                "scale": self.engine.scale,
                "artifact_cache_dir": self.engine.cache_dir,
            },
            "execution": {
                "backend": type(self.backend).__name__,
                "jobs": self.jobs,
                "workers": self.workers,
                "shard_size": self.shard_size,
            },
            "jobs": self.queue.counts(),
            "queue_depth": self.queue_depth(),
            "saturated": self.saturated(),
            "max_pending": self.max_pending,
            "recovered_jobs": self.queue.recovered,
            "cache": self.cache.stats().to_dict(),
            "results": self.results.stats(),
            "stage_runs": dict(self.engine.stage_runs),
        }

    # ------------------------------------------------------------------ #
    # job execution (worker threads)
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            record = self.queue.claim(timeout=0.2)
            if record is None:
                continue
            try:
                self._execute(record)
            except Exception:  # pragma: no cover - defensive: _execute reports
                try:
                    self.queue.fail(record.id, traceback.format_exc(limit=3))
                except Exception:
                    pass

    def _execute(self, record: JobRecord) -> None:
        spec = record.spec
        deadline = None if spec.timeout_s is None else time.monotonic() + spec.timeout_s
        try:
            if spec.tune is not None:
                self._execute_tune(record, deadline)
                return
            specs = spec.expand()
            shards = partition_shards(specs, max_shard_size=self.shard_size)
            self.queue.set_shards(record.id, len(shards))
            keys: list[Optional[str]] = [None] * len(specs)
            done = 0
            for shard_no, shard in enumerate(shards):
                results = self._run_shard_with_retry(record, shard, deadline)
                batch_keys = []
                for (index, case_spec), result in zip(shard, results):
                    key = self._store_result(case_spec, result)
                    keys[index] = key
                    batch_keys.append(key)
                done += len(shard)
                self.queue.progress(
                    record.id, done=done, shards_done=shard_no + 1, result_keys=batch_keys
                )
            assert all(k is not None for k in keys)
            self.queue.finish(record.id)
        except ShardTimeout as exc:
            self.queue.fail(record.id, f"timeout: {exc}")
        except Exception as exc:
            self.queue.fail(record.id, f"{type(exc).__name__}: {exc}")

    def _execute_tune(self, record: JobRecord, deadline: Optional[float]) -> None:
        """Run one tune job: the whole search under the engine lock.

        Every rung evaluation is memoized in the shared ``tune-store``, so a
        re-submitted (or daemon-crash-recovered) tune job recomputes only the
        cases the store is missing.  The finished leaderboard is persisted
        under ``leaderboards/<job_id>.json`` (plus ``latest.json``) next to
        the store, and the job record carries its path as a result key.
        """
        from repro.tune.driver import Tuner

        tune_spec = record.spec.tune
        assert tune_spec is not None

        def progress(done: int, total: int) -> None:
            if deadline is not None and time.monotonic() > deadline:
                raise ShardTimeout(
                    f"job deadline elapsed mid-tune after {done}/{total} case "
                    f"evaluations ({record.spec.timeout_s:.1f}s)"
                )
            self.queue.progress(record.id, done=done, shards_done=0)

        with self._engine_lock:
            board = Tuner(
                self.session,
                tune_spec,
                store=self.data_dir / "tune-store",
                batch=True,
                progress=progress,
            ).run()
        path = board.save(self.leaderboard_dir / f"{record.id}.json")
        board.save(self.leaderboard_dir / "latest.json")
        self.queue.finish(record.id, result_keys=[str(path)])

    @property
    def leaderboard_dir(self) -> Path:
        return self.data_dir / "leaderboards"

    def leaderboard(self, job_id: Optional[str] = None) -> dict[str, object]:
        """The persisted leaderboard payload of one tune job (or the latest).

        Raises ``KeyError`` when no tune job has produced one yet (the HTTP
        layer maps this to 404).
        """
        from repro.tune.leaderboard import Leaderboard

        if job_id is not None and not re.fullmatch(r"[A-Za-z0-9_.\-]+", job_id):
            raise ValueError(f"bad leaderboard job id {job_id!r}")
        path = self.leaderboard_dir / (f"{job_id}.json" if job_id else "latest.json")
        try:
            return Leaderboard.load(path).to_dict()
        except FileNotFoundError:
            raise KeyError(
                f"no leaderboard for job {job_id!r}" if job_id else "no leaderboard yet"
            ) from None

    def _store_result(self, spec: CaseSpec, result: CaseResult) -> str:
        key = result_key(self.engine, spec)
        self.cache.put(key, result.to_dict())
        self.results.append(key, result)
        return key

    def _run_shard_with_retry(
        self,
        record: JobRecord,
        shard: list[tuple[int, CaseSpec]],
        deadline: Optional[float],
    ) -> list[CaseResult]:
        specs = [case_spec for _, case_spec in shard]
        delay = self.retry_base_delay
        last_error: Optional[BaseException] = None
        for attempt in range(1, record.spec.max_attempts + 1):
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise ShardTimeout(
                    f"job deadline elapsed before shard of {len(specs)} case(s) "
                    f"(after {record.spec.timeout_s:.1f}s)"
                )
            try:
                if isinstance(self.backend, InlineShardBackend):
                    # the inline backend shares the query engine: serialise
                    with self._engine_lock:
                        return self.backend.run_shard(specs, timeout_s=remaining)
                return self.backend.run_shard(specs, timeout_s=remaining)
            except ShardTimeout:
                raise
            except Exception as exc:
                last_error = exc
                if attempt == record.spec.max_attempts:
                    break
                self.queue.record_attempt(
                    record.id, error=f"attempt {attempt}: {type(exc).__name__}: {exc}"
                )
                # exponential backoff, interruptible by shutdown
                if self._stop.wait(delay):
                    break
                delay *= 2
        assert last_error is not None
        raise last_error
