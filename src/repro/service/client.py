"""Small stdlib client for the sweep service API.

Used by the ``repro submit`` / ``repro query`` CLI verbs, the end-to-end
tests and the serving benchmark suite.  Raw response bytes are kept around
(:attr:`QueryResponse.body`) so callers can assert byte-identical cached
re-queries without re-serializing anything.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["ServiceError", "QueryResponse", "ServiceClient"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service (carries status and message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass
class QueryResponse:
    """One HTTP response: parsed payload plus the exact bytes on the wire."""

    status: int
    payload: dict[str, object]
    body: bytes
    cache: Optional[str] = None  # "hit" | "miss" | None

    @property
    def cached(self) -> bool:
        return self.cache == "hit"


class ServiceClient:
    """Talk to a running ``repro serve`` daemon over HTTP/JSON."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(
        self, path: str, *, method: str = "GET", body: Optional[dict] = None
    ) -> QueryResponse:
        request = urllib.request.Request(self.base_url + path, method=method)
        data = None
        if body is not None:
            data = json.dumps(body).encode()
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, data=data, timeout=self.timeout) as response:
                raw = response.read()
                return QueryResponse(
                    status=response.status,
                    payload=json.loads(raw),
                    body=raw,
                    cache=response.headers.get("X-Repro-Cache"),
                )
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw).get("error", raw.decode(errors="replace"))
            except (json.JSONDecodeError, AttributeError):
                message = raw.decode(errors="replace")
            raise ServiceError(exc.code, message) from None

    # ------------------------------------------------------------------ #
    def healthz(self) -> dict[str, object]:
        return self._request("/healthz").payload

    def submit(self, spec: Mapping[str, object]) -> dict[str, object]:
        """POST a JobSpec dict; returns the created job record."""
        return self._request("/jobs", method="POST", body=dict(spec)).payload

    def job(self, job_id: str) -> dict[str, object]:
        return self._request(f"/jobs/{urllib.parse.quote(job_id)}").payload

    def jobs(self) -> list[dict[str, object]]:
        return self._request("/jobs").payload["jobs"]  # type: ignore[return-value]

    def wait(self, job_id: str, *, timeout: float = 300.0, poll: float = 0.1) -> dict[str, object]:
        """Poll until the job reaches a terminal state (or raise TimeoutError)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']!r} after {timeout:.0f}s "
                    f"({record['done']}/{record['total']} cases)"
                )
            time.sleep(poll)

    def result(self, *, compute: bool | None = None, **params: object) -> QueryResponse:
        """GET /result — one case, cache-first (problem=... required)."""
        query = {k: str(v) for k, v in params.items() if v is not None}
        if compute is not None:
            query["compute"] = "true" if compute else "false"
        return self._request("/result?" + urllib.parse.urlencode(query))

    def results(self, *, compute: bool | None = None, **params: object) -> QueryResponse:
        """GET /results in the *legacy* single-result shape (deprecated).

        Kept so old callers keep working; the server answers through its
        deprecation shim.  New code wants :meth:`result` (one case) or
        :meth:`list_results` (paginated listing).
        """
        query = {k: str(v) for k, v in params.items() if v is not None}
        if compute is not None:
            query["compute"] = "true" if compute else "false"
        return self._request("/results?" + urllib.parse.urlencode(query))

    def list_results(
        self,
        *,
        limit: int | None = None,
        cursor: int | None = None,
        fields: str | None = None,
        **filters: object,
    ) -> QueryResponse:
        """GET /results — the paginated columnar listing.

        ``filters`` are the column predicates (``problem=``, ``ordering=``,
        ``strategy=``, ``split=``, ``nprocs=``).  The query string is built
        in sorted order, so the same logical request is always the same URL
        (and therefore the same bytes back).
        """
        query = {k: str(v) for k, v in filters.items() if v is not None}
        if limit is not None:
            query["limit"] = str(limit)
        if cursor is not None:
            query["cursor"] = str(cursor)
        if fields:
            query["fields"] = fields
        if "limit" not in query and "cursor" not in query and "fields" not in query:
            # force the list shape even for bare problem= filters, which the
            # server would otherwise route through the deprecation shim
            query["limit"] = str(50)
        return self._request("/results?" + urllib.parse.urlencode(sorted(query.items())))

    def leaderboard(self, job: str | None = None) -> QueryResponse:
        """GET /leaderboard — the latest (or one job's) tune leaderboard."""
        suffix = ("?" + urllib.parse.urlencode({"job": job})) if job else ""
        return self._request("/leaderboard" + suffix)

    def table(self, name: str, **params: object) -> QueryResponse:
        query = {k: str(v) for k, v in params.items() if v not in (None, "")}
        suffix = ("?" + urllib.parse.urlencode(query)) if query else ""
        return self._request(f"/tables/{urllib.parse.quote(name)}" + suffix)
