"""Persistent job model and queue for the sweep service.

A *job* is one unit of queued work: a declarative sweep (a
:class:`~repro.specs.SweepSpec` grid and/or explicit
:class:`~repro.pipeline.stage.CaseSpec` values) plus execution policy
(priority, retry budget, timeout).  :class:`JobRecord` tracks it through the
state machine::

    queued ──► running ──► done
      ▲           │
      └───────────┼──► failed
        (retry)   │
                  └──► queued   (crash recovery / retry-with-backoff)

Every transition is appended to a crash-safe on-disk journal (JSON lines,
written via the same write-temp-then-``os.replace`` discipline as the
artifact store for the compacted form, and ``fsync``-ed appends for the
incremental form).  On startup the journal is replayed: finished jobs come
back ``done``/``failed``, and jobs that were ``queued`` or ``running`` when
the previous daemon died are re-queued — a crash never loses a submitted
job and never leaves one stuck in ``running``.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.pipeline.stage import CaseSpec
from repro.serialize import decode_fields
from repro.specs import SweepSpec
from repro.tune.driver import TuneSpec

__all__ = [
    "JOB_STATES",
    "JobStateError",
    "JobSpec",
    "JobRecord",
    "JobJournal",
    "JobQueue",
    "new_job_id",
]

#: the job lifecycle states, in rough chronological order.
JOB_STATES = ("queued", "running", "done", "failed")

#: legal state transitions (``running → queued`` is retry / crash recovery).
_TRANSITIONS: dict[str, frozenset[str]] = {
    "queued": frozenset({"running", "failed"}),
    "running": frozenset({"done", "failed", "queued"}),
    "done": frozenset(),
    "failed": frozenset(),
}


class JobStateError(RuntimeError):
    """An illegal job state transition (e.g. finishing a job twice)."""


def new_job_id() -> str:
    """A short, collision-safe job identifier (12 hex chars)."""
    return uuid.uuid4().hex[:12]


# --------------------------------------------------------------------------- #
# the job spec: what to run, and how hard to try
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class JobSpec:
    """Declarative description of one queued job (JSON round-trippable).

    Two job kinds share this spec: *sweep* jobs (``sweep`` and/or ``cases``
    — :meth:`expand` concatenates the grid expansion with the explicit
    cases, in that order) and *tune* jobs (``tune``, a full
    :class:`~repro.tune.driver.TuneSpec`, exclusive with the other two —
    executed by the daemon through a :class:`~repro.tune.driver.Tuner`).
    ``max_attempts`` bounds the retry-with-backoff loop of each shard;
    ``timeout_s`` is a wall-clock deadline for the whole job.
    """

    sweep: Optional[SweepSpec] = None
    cases: tuple[CaseSpec, ...] = ()
    tune: Optional[TuneSpec] = None
    priority: int = 0
    max_attempts: int = 3
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tune is not None:
            if self.sweep is not None or self.cases:
                raise ValueError(
                    "a tune job is exclusive: it cannot also carry a sweep grid "
                    "or explicit cases"
                )
        elif self.sweep is None and not self.cases:
            raise ValueError("JobSpec needs a sweep grid, explicit cases, or a tune spec")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        object.__setattr__(self, "cases", tuple(self.cases))

    def expand(self) -> list[CaseSpec]:
        """Every *explicit* case of this job, grid expansion first.

        Tune jobs expand to nothing here — their cases are chosen by the
        searcher at run time; :meth:`total_cases` still bounds them.
        """
        out: list[CaseSpec] = []
        if self.sweep is not None:
            out.extend(self.sweep.expand())
        out.extend(self.cases)
        return out

    def total_cases(self) -> int:
        """Progress denominator: grid size, or the searcher's planned budget."""
        if self.tune is not None:
            return self.tune.planned_evaluations()
        return len(self.expand())

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "priority": self.priority,
            "max_attempts": self.max_attempts,
            "timeout_s": self.timeout_s,
        }
        if self.sweep is not None:
            data["sweep"] = self.sweep.to_dict()
        if self.cases:
            data["cases"] = [case.to_dict() for case in self.cases]
        if self.tune is not None:
            data["tune"] = self.tune.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobSpec":
        known = {"sweep", "cases", "tune", "priority", "max_attempts", "timeout_s"}
        data = decode_fields("job_spec", data, known, label="JobSpec", strict=True)
        sweep = data.get("sweep")
        cases = data.get("cases") or ()
        tune = data.get("tune")
        if not isinstance(cases, Sequence) or isinstance(cases, (str, bytes)):
            raise ValueError(f"JobSpec cases must be a list of case dicts, got {cases!r}")
        return cls(
            sweep=SweepSpec.from_dict(sweep) if sweep is not None else None,
            cases=tuple(CaseSpec.from_dict(case) for case in cases),
            tune=TuneSpec.from_dict(tune) if tune is not None else None,  # type: ignore[arg-type]
            priority=int(data.get("priority", 0)),
            max_attempts=int(data.get("max_attempts", 3)),
            timeout_s=(None if data.get("timeout_s") is None else float(data["timeout_s"])),  # type: ignore[arg-type]
        )


# --------------------------------------------------------------------------- #
# the job record: one job's observable state
# --------------------------------------------------------------------------- #
@dataclass
class JobRecord:
    """One job as seen by the queue, the journal and the HTTP API."""

    id: str
    spec: JobSpec
    state: str = "queued"
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    done: int = 0
    total: int = 0
    shards_done: int = 0
    shards_total: int = 0
    result_keys: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "done": self.done,
            "total": self.total,
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "result_keys": list(self.result_keys),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobRecord":
        # tolerant: a journal written by a newer daemon (extra bookkeeping
        # fields) still replays on this build
        known = {f.name for f in fields(cls)}
        payload = decode_fields("job_record", data, known, label="JobRecord")
        payload["spec"] = JobSpec.from_dict(payload["spec"])  # type: ignore[arg-type]
        payload["result_keys"] = list(payload.get("result_keys") or ())
        record = cls(**payload)  # type: ignore[arg-type]
        if record.state not in JOB_STATES:
            raise ValueError(f"unknown job state {record.state!r}; expected one of {JOB_STATES}")
        return record


# --------------------------------------------------------------------------- #
# the journal: crash-safe persistence
# --------------------------------------------------------------------------- #
class JobJournal:
    """Append-only JSON-lines journal of job submissions and transitions.

    Two record shapes::

        {"op": "submit", "job": {...full JobRecord...}}
        {"op": "update", "id": "...", ...changed fields...}

    Appends are flushed and ``fsync``-ed under a lock, so a line is either
    fully on disk or absent — a reader (the replay on startup) never sees a
    torn record; a trailing partial line from a mid-write crash is skipped.
    :meth:`compact` rewrites the journal as one ``submit`` per live job via
    an atomic replace, bounding replay cost for long-lived daemons.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()

    def append(self, record: Mapping[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())

    def replay(self) -> dict[str, JobRecord]:
        """Rebuild the job table from the journal (missing file = empty)."""
        records: dict[str, JobRecord] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                # a torn trailing line from a crash mid-append: ignore it —
                # the transition it described never became durable
                continue
            op = event.get("op")
            if op == "submit":
                record = JobRecord.from_dict(event["job"])
                records[record.id] = record
            elif op == "update":
                record = records.get(event.get("id", ""))
                if record is None:
                    continue  # update for a compacted-away/unknown job
                for key, value in event.items():
                    if key in ("op", "id"):
                        continue
                    if key == "result_keys_extend":
                        record.result_keys.extend(value)
                    elif hasattr(record, key):
                        setattr(record, key, value)
        return records

    def compact(self, records: Iterable[JobRecord]) -> None:
        """Atomically rewrite the journal as one submit line per record."""
        tmp = self.path.with_suffix(".tmp")
        with self._lock:
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(
                        json.dumps(
                            {"op": "submit", "job": record.to_dict()},
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                        + "\n"
                    )
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)


# --------------------------------------------------------------------------- #
# the queue: thread-safe dispatch with priorities
# --------------------------------------------------------------------------- #
class JobQueue:
    """Thread-safe priority queue of jobs, optionally journal-backed.

    Producers call :meth:`submit`; worker threads call :meth:`claim` (which
    blocks until a job is available and atomically moves it to ``running``)
    and then exactly one of :meth:`finish`, :meth:`fail` or :meth:`requeue`.
    Transitions are validated against the state machine and journaled before
    they are observable through :meth:`get` — a reader never sees a state
    the journal could lose.
    """

    def __init__(
        self,
        journal_path: str | os.PathLike | None = None,
        *,
        fsync: bool = True,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._clock = clock
        self._records: dict[str, JobRecord] = {}
        self._heap: list[tuple[int, int, str]] = []  # (-priority, seq, id)
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self.journal = JobJournal(journal_path, fsync=fsync) if journal_path else None
        self.recovered = 0
        if self.journal is not None:
            self._records = self.journal.replay()
            for record in self._records.values():
                if record.state == "running":
                    # the previous daemon died mid-job: the work is
                    # re-runnable by construction (results are cached by
                    # content key), so put it back in line
                    record.state = "queued"
                    record.started_at = None
                    self.recovered += 1
                if record.state == "queued":
                    heapq.heappush(
                        self._heap, (-record.spec.priority, next(self._seq), record.id)
                    )
            self.journal.compact(self._records.values())

    # ------------------------------------------------------------------ #
    def _journal_update(self, record: JobRecord, **fields: object) -> None:
        if self.journal is not None:
            self.journal.append({"op": "update", "id": record.id, **fields})

    def submit(self, spec: JobSpec, *, job_id: str | None = None) -> JobRecord:
        record = JobRecord(
            id=job_id or new_job_id(),
            spec=spec,
            state="queued",
            created_at=self._clock(),
            total=spec.total_cases(),
        )
        with self._cond:
            if record.id in self._records:
                raise ValueError(f"duplicate job id {record.id!r}")
            if self.journal is not None:
                self.journal.append({"op": "submit", "job": record.to_dict()})
            self._records[record.id] = record
            heapq.heappush(self._heap, (-spec.priority, next(self._seq), record.id))
            self._cond.notify()
        return record

    def claim(self, timeout: float | None = None) -> Optional[JobRecord]:
        """Pop the highest-priority queued job and mark it ``running``.

        Blocks for up to ``timeout`` seconds (forever when ``None``); returns
        ``None`` on timeout so worker loops can poll their stop flag.
        """
        with self._cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    record = self._records.get(job_id)
                    if record is not None and record.state == "queued":
                        self._transition(record, "running", started_at=self._clock())
                        return record
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return None

    def _transition(self, record: JobRecord, state: str, **fields: object) -> None:
        # caller holds self._cond
        if state not in JOB_STATES:
            raise JobStateError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[record.state]:
            raise JobStateError(
                f"job {record.id}: illegal transition {record.state!r} → {state!r}"
            )
        self._journal_update(record, state=state, **fields)
        record.state = state
        for key, value in fields.items():
            setattr(record, key, value)

    def finish(self, job_id: str, *, result_keys: Sequence[str] = ()) -> JobRecord:
        with self._cond:
            record = self._require(job_id)
            record.result_keys.extend(result_keys)
            record.done = record.total
            self._transition(
                record,
                "done",
                finished_at=self._clock(),
                done=record.done,
                result_keys=list(record.result_keys),
            )
            return record

    def fail(self, job_id: str, error: str) -> JobRecord:
        with self._cond:
            record = self._require(job_id)
            self._transition(record, "failed", finished_at=self._clock(), error=error)
            return record

    def requeue(self, job_id: str, *, error: str | None = None) -> JobRecord:
        """Put a running job back in line (retry); bumps ``attempts``."""
        with self._cond:
            record = self._require(job_id)
            self._transition(
                record,
                "queued",
                started_at=None,
                attempts=record.attempts + 1,
                error=error,
                done=0,
                shards_done=0,
            )
            heapq.heappush(self._heap, (-record.spec.priority, next(self._seq), job_id))
            self._cond.notify()
            return record

    def record_attempt(self, job_id: str, *, error: str | None = None) -> None:
        """Count one failed shard attempt (journaled, state unchanged)."""
        with self._cond:
            record = self._require(job_id)
            record.attempts += 1
            if error is not None:
                record.error = error
            self._journal_update(record, attempts=record.attempts, error=record.error)

    def progress(self, job_id: str, *, done: int, shards_done: int, result_keys: Sequence[str] = ()) -> None:
        with self._cond:
            record = self._require(job_id)
            record.done = int(done)
            record.shards_done = int(shards_done)
            record.result_keys.extend(result_keys)
            self._journal_update(
                record,
                done=record.done,
                shards_done=record.shards_done,
                result_keys_extend=list(result_keys),
            )

    def set_shards(self, job_id: str, shards_total: int) -> None:
        with self._cond:
            record = self._require(job_id)
            record.shards_total = int(shards_total)
            self._journal_update(record, shards_total=record.shards_total)

    # ------------------------------------------------------------------ #
    def _require(self, job_id: str) -> JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record

    def get(self, job_id: str) -> JobRecord:
        """A snapshot copy of one job (safe to serialize without the lock)."""
        with self._cond:
            record = self._require(job_id)
            return replace(record, result_keys=list(record.result_keys))

    def list(self) -> list[JobRecord]:
        """Snapshot copies of every job, most recent submission first."""
        with self._cond:
            return [
                replace(r, result_keys=list(r.result_keys))
                for r in sorted(
                    self._records.values(), key=lambda r: r.created_at, reverse=True
                )
            ]

    def counts(self) -> dict[str, int]:
        with self._cond:
            out = {state: 0 for state in JOB_STATES}
            for record in self._records.values():
                out[record.state] += 1
            return out

    def wake(self) -> None:
        """Wake every blocked :meth:`claim` (used by daemon shutdown)."""
        with self._cond:
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._records)
