"""The shared result cache: TTL + LRU + size accounting over a DiskStore.

:class:`CacheStore` promotes the pipeline's content-addressed
:class:`~repro.pipeline.store.DiskStore` into a service-grade cache:

* **TTL** — entries older than ``ttl_s`` are treated as misses and deleted
  on access (and swept opportunistically on writes);
* **LRU eviction** — ``max_entries`` / ``max_bytes`` budgets are enforced on
  every write by evicting the least-recently-*used* entries first;
* **size accounting** — the on-disk byte total is tracked incrementally and
  exposed through :meth:`stats` (hits, misses, evictions, bytes, entries);
* **concurrent-writer safety** — all bookkeeping happens under one lock,
  while the payloads themselves ride the disk store's write-temp-then-
  ``os.replace`` discipline (``durable=True``), so two daemons sharing a
  cache directory can race freely: a reader sees either the old or the new
  payload, never a torn one, and entries deleted by a sibling process
  degrade into ordinary misses.

The cache is *content-addressed by the caller* (the service derives result
keys from canonical case parameters), so a stale in-memory index is never a
correctness problem — at worst it re-reads the directory (:meth:`refresh`).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.pipeline.store import ArtifactStore, DiskStore

__all__ = ["CacheEntry", "CacheStats", "CacheStore"]


@dataclass
class CacheEntry:
    """Index record of one cached payload."""

    size: int
    stored_at: float


@dataclass
class CacheStats:
    """Point-in-time cache counters (JSON-ready via ``__dict__``)."""

    entries: int
    bytes: int
    hits: int
    misses: int
    puts: int
    ttl_evictions: int
    lru_evictions: int

    def to_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class CacheStore(ArtifactStore):
    """TTL/LRU cache over a :class:`DiskStore` directory (see module doc).

    Parameters
    ----------
    directory:
        Cache directory (one pickle per entry, shared between processes).
    ttl_s:
        Seconds after which an entry expires (``None`` = never).
    max_entries / max_bytes:
        LRU budgets enforced after every write (``None`` = unbounded).
    clock:
        Injectable time source (tests freeze it to exercise TTL precisely).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        ttl_s: Optional[float] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.disk = DiskStore(directory, durable=True)
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._clock = clock
        self._lock = threading.RLock()
        self._index: OrderedDict[str, CacheEntry] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._ttl_evictions = 0
        self._lru_evictions = 0
        self.refresh()

    # ------------------------------------------------------------------ #
    # index maintenance
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Rebuild the index from the directory (sibling writers resync)."""
        with self._lock:
            self._index.clear()
            self._bytes = 0
            for key in self.disk.keys():
                try:
                    stat = self.disk.path(key).stat()
                except FileNotFoundError:
                    continue  # deleted by a sibling between listing and stat
                self._index[key] = CacheEntry(size=stat.st_size, stored_at=stat.st_mtime)
                self._bytes += stat.st_size

    def _drop(self, key: str, entry: CacheEntry) -> None:
        # caller holds the lock; missing files (sibling already evicted) are fine
        self.disk.delete(key)
        self._index.pop(key, None)
        self._bytes -= entry.size

    def _expired(self, entry: CacheEntry) -> bool:
        return self.ttl_s is not None and (self._clock() - entry.stored_at) > self.ttl_s

    def _adopt(self, key: str) -> Optional[CacheEntry]:
        """Pick up an entry written by a sibling process, if one exists."""
        try:
            stat = self.disk.path(key).stat()
        except FileNotFoundError:
            return None
        entry = CacheEntry(size=stat.st_size, stored_at=stat.st_mtime)
        self._index[key] = entry
        self._bytes += entry.size
        return entry

    # ------------------------------------------------------------------ #
    # the mapping interface
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> object:
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                entry = self._adopt(key)
            if entry is None:
                self._misses += 1
                raise KeyError(key)
            if self._expired(entry):
                self._drop(key, entry)
                self._ttl_evictions += 1
                self._misses += 1
                raise KeyError(key)
            try:
                value = self.disk.get(key)
            except KeyError:
                # deleted underneath us by a sibling: an ordinary miss
                self._index.pop(key, None)
                self._bytes -= entry.size
                self._misses += 1
                raise
            self._index.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: object, *, persist: bool = True) -> None:
        with self._lock:
            old = self._index.pop(key, None)
            if old is not None:
                self._bytes -= old.size
            self.disk.put(key, value)
            size = self.disk.size_bytes(key)
            self._index[key] = CacheEntry(size=size, stored_at=self._clock())
            self._bytes += size
            self._puts += 1
            self._evict(protect=key)

    def _evict(self, *, protect: str) -> None:
        # caller holds the lock; evict least-recently-used first, never the
        # entry that was just written (a single oversized payload stays)
        def over_budget() -> bool:
            if self.max_entries is not None and len(self._index) > self.max_entries:
                return True
            if self.max_bytes is not None and self._bytes > self.max_bytes:
                return True
            return False

        while over_budget():
            key = next(iter(self._index))
            if key == protect:
                if len(self._index) == 1:
                    break
                self._index.move_to_end(key)
                key = next(iter(self._index))
                if key == protect:  # pragma: no cover - defensive
                    break
            self._drop(key, self._index[key])
            self._lru_evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            entry = self._index.get(key) or self._adopt(key)
            if entry is None:
                return False
            if self._expired(entry):
                self._drop(key, entry)
                self._ttl_evictions += 1
                return False
            return True

    # ------------------------------------------------------------------ #
    # service-facing extras
    # ------------------------------------------------------------------ #
    def delete(self, key: str) -> bool:
        with self._lock:
            entry = self._index.pop(key, None)
            if entry is not None:
                self._bytes -= entry.size
            return self.disk.delete(key)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        with self._lock:
            removed = 0
            for key in list(self._index):
                self._drop(key, self._index[key])
                removed += 1
            return removed

    def sweep(self) -> int:
        """Evict every expired entry now; returns how many were removed."""
        with self._lock:
            expired = [k for k, e in self._index.items() if self._expired(e)]
            for key in expired:
                self._drop(key, self._index[key])
                self._ttl_evictions += 1
            return len(expired)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                entries=len(self._index),
                bytes=self._bytes,
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                ttl_evictions=self._ttl_evictions,
                lru_evictions=self._lru_evictions,
            )
