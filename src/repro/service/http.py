"""HTTP/JSON API over a :class:`~repro.service.daemon.SweepService`.

Stdlib only (:class:`http.server.ThreadingHTTPServer`) — no new hard
dependencies.  Endpoints:

========================  ==========================================================
``GET  /healthz``          liveness + queue/cache/store/engine counters
``POST /jobs``             submit a sweep job (JSON body: a ``JobSpec`` dict);
                           answers ``503`` with a ``Retry-After`` header when
                           the queue is at its ``max_pending`` depth
``GET  /jobs``             list jobs (most recent first)
``GET  /jobs/<id>``        one job's status/progress
``GET  /results``          paginated listing from the columnar result store
                           (filters ``problem``/``ordering``/``strategy``/
                           ``split``/``nprocs``; ``limit``/``cursor``
                           paginate; ``fields`` projects columns; the body
                           carries a ``next`` link)
``GET  /result``           one case result, cache-first, computed on miss
                           (query params: ``problem`` required; ``ordering``,
                           ``strategy``, ``nprocs``, ``scale``, ``split``,
                           ``split_threshold``, ``compute=false`` optional)
``GET  /tables/<name>``    one of the paper's tables, cache-first
                           (``problems``/``orderings`` comma-list params)
``GET  /leaderboard``      the latest tune job's leaderboard artifact
                           (``job=<id>`` selects a specific tune job;
                           404 until a tune job has finished)
========================  ==========================================================

Backwards compatibility: ``GET /results`` used to be today's ``/result``.
A request to ``/results`` with no pagination parameter but a ``problem=``
or ``compute=`` one is still answered in the old single-result shape, with
``Deprecation``/``X-Repro-Deprecated`` headers pointing at ``/result``.

Responses are JSON with sorted keys and fixed separators
(:func:`repro.serialize.canonical_json`), so the same logical answer is
always the same bytes — a cached re-query, a replayed store or a resumed
sweep produces byte-identical pages.  Whether the cache answered is
reported out-of-band in the ``X-Repro-Cache: hit|miss`` header (keeping it
out of the body is what makes the bytes repeatable).
"""

from __future__ import annotations

import json
import re
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qsl, urlsplit

from repro.serialize import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.daemon import SweepService

__all__ = ["ServiceHTTPServer", "make_server", "canonical_json"]

#: maximum accepted request body (a job submission is small; cut off abuse).
_MAX_BODY = 4 * 1024 * 1024

_JOB_PATH = re.compile(r"^/jobs/(?P<id>[A-Za-z0-9_.\-]+)$")
_TABLE_PATH = re.compile(r"^/tables/(?P<name>[A-Za-z0-9_.\-]+)$")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SweepService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: "SweepService", *, quiet: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and the bench suite use this)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        return thread


def make_server(
    service: "SweepService", *, host: str = "127.0.0.1", port: int = 0, quiet: bool = False
) -> ServiceHTTPServer:
    """Bind the API server (``port=0`` picks a free ephemeral port)."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for the type checker
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover - cosmetic
        if not self.server.quiet:
            sys.stderr.write(
                "repro serve: %s - %s\n" % (self.address_string(), fmt % args)
            )

    def _send(self, status: int, payload: object, *, headers: dict[str, str] | None = None) -> None:
        body = canonical_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _params(self) -> dict[str, str]:
        query = urlsplit(self.path).query
        return dict(parse_qsl(query, keep_blank_values=True))

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/") or "/"
        service = self.server.service
        try:
            if path == "/healthz":
                self._send(200, service.stats())
            elif path == "/jobs":
                self._send(200, {"jobs": [r.to_dict() for r in service.queue.list()]})
            elif match := _JOB_PATH.match(path):
                try:
                    record = service.queue.get(match.group("id"))
                except KeyError:
                    self._error(404, f"no such job {match.group('id')!r}")
                    return
                self._send(200, record.to_dict())
            elif path == "/results":
                self._results_list()
            elif path == "/result":
                self._result()
            elif match := _TABLE_PATH.match(path):
                self._table(match.group("name"))
            elif path == "/leaderboard":
                self._leaderboard()
            else:
                self._error(404, f"no such endpoint {path!r}")
        except ValueError as exc:
            self._error(400, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/")
        if path != "/jobs":
            self._error(404, f"no such endpoint {path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0 or length > _MAX_BODY:
            self._error(400, f"request body must be 1..{_MAX_BODY} bytes")
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object (a JobSpec)")
            return
        from repro.service.daemon import QueueSaturated

        try:
            record = self.server.service.submit(payload)
        except QueueSaturated as exc:
            self._send(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": str(int(exc.retry_after))},
            )
            return
        except (ValueError, KeyError, TypeError) as exc:
            self._error(400, str(exc))
            return
        self._send(202, record.to_dict(), headers={"Location": f"/jobs/{record.id}"})

    # ------------------------------------------------------------------ #
    def _result(self, *, deprecated: bool = False) -> None:
        params = self._params()
        compute = params.pop("compute", "true").strip().lower() not in ("0", "false", "no")
        try:
            outcome = self.server.service.query(params, compute=compute)
        except KeyError:
            self._error(404, "result not cached (and compute=false was requested)")
            return
        headers = {"X-Repro-Cache": "hit" if outcome.cached else "miss"}
        if deprecated:
            headers["Deprecation"] = "true"
            headers["X-Repro-Deprecated"] = "single-result lookup moved to GET /result"
        self._send(200, {"key": outcome.key, "result": outcome.payload}, headers=headers)

    def _results_list(self) -> None:
        params = self._params()
        # legacy shim: the old single-result /results request carries no
        # pagination parameter but a problem= (or compute=) one — keep
        # answering it in the old shape, flagged as deprecated
        legacy = not ({"limit", "cursor", "fields"} & set(params)) and (
            "problem" in params or "compute" in params
        )
        if legacy:
            self._result(deprecated=True)
            return
        self._send(200, self.server.service.list_results(params))

    def _leaderboard(self) -> None:
        params = self._params()
        unknown = set(params) - {"job"}
        if unknown:
            self._error(400, f"unknown query parameter(s) {sorted(unknown)}")
            return
        try:
            payload = self.server.service.leaderboard(params.get("job"))
        except KeyError as exc:
            self._error(404, str(exc.args[0]) if exc.args else "no leaderboard yet")
            return
        self._send(200, payload)

    def _table(self, name: str) -> None:
        params = self._params()
        unknown = set(params) - {"problems", "orderings"}
        if unknown:
            self._error(400, f"unknown query parameter(s) {sorted(unknown)}")
            return
        problems = [p for p in params.get("problems", "").split(",") if p.strip()]
        orderings = [o for o in params.get("orderings", "").split(",") if o.strip()]
        outcome = self.server.service.table(name, problems=problems, orderings=orderings)
        self._send(
            200,
            {"key": outcome.key, **outcome.payload},
            headers={"X-Repro-Cache": "hit" if outcome.cached else "miss"},
        )
