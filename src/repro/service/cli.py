"""The ``repro serve`` / ``repro submit`` / ``repro query`` CLI verbs.

Examples
--------
Start the daemon (state under ``.repro_service/``, cache-first queries)::

    python -m repro serve --port 8023 --nprocs 32 --scale 1.0 \\
        --data-dir .repro_service --ttl 86400 --max-entries 100000

Submit a sweep job and wait for it to finish::

    python -m repro submit --url http://127.0.0.1:8023 \\
        --problems XENON2,PRE2 --orderings metis \\
        --strategies 'mumps-workload,hybrid(alpha=0.3)' --nprocs 8,16 --wait

Query one result (served from cache in milliseconds once computed)::

    python -m repro query --url http://127.0.0.1:8023 \\
        --problem XENON2 --ordering metis --strategy 'hybrid(alpha=0.3)' --nprocs 16
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sweep-as-a-service: daemon, job submission and cached queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the sweep service daemon")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8023, help="bind port (0 = ephemeral; default 8023)")
    serve.add_argument("--data-dir", default=".repro_service", help="journal + result-cache directory")
    serve.add_argument("--nprocs", type=int, default=32, help="engine default simulated processors")
    serve.add_argument("--scale", type=float, default=1.0, help="engine default problem scale")
    serve.add_argument("--cache", default="", help="artifact-cache directory for the engine (optional)")
    serve.add_argument("--jobs", type=int, default=1, help="shard width: 1 = in-process batched, >1 = process pool")
    serve.add_argument("--workers", type=int, default=1, help="job worker threads (default 1)")
    serve.add_argument("--shard-size", type=int, default=None, help="max cases per shard (default: per analysis group)")
    serve.add_argument(
        "--max-pending", type=int, default=None,
        help="backpressure bound: POST /jobs answers 503 + Retry-After while this many jobs are queued (default: unbounded)",
    )
    serve.add_argument("--ttl", type=float, default=None, metavar="SECONDS", help="result-cache TTL (default: no expiry)")
    serve.add_argument("--max-entries", type=int, default=None, help="result-cache LRU entry budget")
    serve.add_argument("--max-bytes", type=int, default=None, help="result-cache LRU byte budget")
    serve.add_argument("--no-journal-fsync", action="store_true", help="skip fsync on journal appends (CI/tests)")
    serve.add_argument("--quiet", action="store_true", help="suppress per-request log lines")

    submit = sub.add_parser("submit", help="submit a sweep (or tune) job to a running daemon")
    submit.add_argument("--url", default="http://127.0.0.1:8023", help="service base URL")
    submit.add_argument("--problems", required=True, help="comma-separated problems")
    submit.add_argument(
        "--tune", default=None, metavar="SPACE",
        help="submit a tune job over this search space (e.g. 'hybrid(alpha=0.0..1.0)') "
        "instead of a sweep grid; --strategies/--nprocs axes do not apply",
    )
    submit.add_argument("--tune-searcher", default="halving", help="tune searcher spec (default halving)")
    submit.add_argument("--tune-objective", default="peak-memory", help="tune objective spec (default peak-memory)")
    submit.add_argument("--tune-seed", type=int, default=0, help="tune search seed (default 0)")
    submit.add_argument("--orderings", default="metis", help="comma-separated ordering specs")
    submit.add_argument("--strategies", default="memory-full", help="comma-separated strategy specs")
    submit.add_argument("--nprocs", default="", help="comma-separated processor-count axis (optional)")
    submit.add_argument("--scale", type=float, default=None, help="per-case scale override (optional)")
    submit.add_argument("--split", action="store_true", help="sweep with static splitting")
    submit.add_argument("--priority", type=int, default=0, help="queue priority (higher runs first)")
    submit.add_argument("--max-attempts", type=int, default=3, help="retry budget per shard (default 3)")
    submit.add_argument("--timeout", type=float, default=None, metavar="SECONDS", help="job wall-clock deadline")
    submit.add_argument("--wait", action="store_true", help="poll until the job finishes; exit 1 on failure")
    submit.add_argument("--wait-timeout", type=float, default=600.0, help="--wait deadline (default 600s)")

    query = sub.add_parser("query", help="query results from a running daemon (one case or a listing)")
    query.add_argument("--url", default="http://127.0.0.1:8023", help="service base URL")
    query.add_argument("--problem", default=None, help="problem name, e.g. XENON2 (required for a single-case query)")
    query.add_argument("--ordering", default=None, help="ordering spec (single-case default: metis)")
    query.add_argument("--strategy", default=None, help="strategy spec, e.g. 'hybrid(alpha=0.3)'")
    query.add_argument("--nprocs", type=int, default=None, help="processor-count override / list filter")
    query.add_argument("--scale", type=float, default=None, help="scale override (single-case only)")
    query.add_argument("--split", action="store_true", help="the split-tree variant / list filter")
    query.add_argument("--no-compute", action="store_true", help="404 instead of computing on a cache miss")
    query.add_argument("--table", default=None, metavar="NAME", help="fetch a table (e.g. table2) instead of one case")
    query.add_argument(
        "--leaderboard", nargs="?", const="latest", default=None, metavar="JOB",
        help="fetch a tune job's leaderboard (bare flag = the latest one)",
    )
    query.add_argument("--list", action="store_true", help="paginated listing from the result store instead of one case")
    query.add_argument("--limit", type=int, default=None, help="page size of --list (default 50, max 500)")
    query.add_argument("--cursor", type=int, default=None, help="page offset of --list (from the previous page's next link)")
    query.add_argument("--fields", default=None, help="comma-separated field projection for --list rows")
    return parser


# --------------------------------------------------------------------------- #
def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import SweepService
    from repro.service.http import make_server

    service = SweepService(
        data_dir=args.data_dir,
        nprocs=args.nprocs,
        scale=args.scale,
        artifact_cache_dir=args.cache,
        jobs=args.jobs,
        workers=args.workers,
        shard_size=args.shard_size,
        max_pending=args.max_pending,
        ttl_s=args.ttl,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        journal_fsync=not args.no_journal_fsync,
    )
    service.start()
    server = make_server(service, host=args.host, port=args.port, quiet=args.quiet)
    print(
        f"repro serve: listening on http://{args.host}:{server.port} "
        f"(data dir {args.data_dir}, nprocs={args.nprocs}, scale={args.scale:g}, "
        f"jobs={args.jobs}, workers={args.workers})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError
    from repro.specs import split_spec_list

    spec: dict[str, object] = {
        "priority": args.priority,
        "max_attempts": args.max_attempts,
        "timeout_s": args.timeout,
    }
    if args.tune is not None:
        from repro.tune.driver import TuneSpec
        from repro.tune.space import parse_space

        try:
            tune = TuneSpec(
                space=parse_space(args.tune),
                problems=[p.upper() for p in split_spec_list(args.problems)],
                orderings=split_spec_list(args.orderings),
                searcher=args.tune_searcher,
                objective=args.tune_objective,
                seed=args.tune_seed,
                scale=args.scale,
            )
        except (ValueError, KeyError) as exc:
            print(f"repro submit: {exc}", file=sys.stderr)
            return 2
        spec["tune"] = tune.to_dict()
    else:
        nprocs = [int(part) for part in args.nprocs.split(",") if part.strip()]
        sweep: dict[str, object] = {
            "problems": [p.upper() for p in split_spec_list(args.problems)],
            "orderings": split_spec_list(args.orderings),
            "strategies": split_spec_list(args.strategies),
            "split": [bool(args.split)],
        }
        if nprocs:
            sweep["nprocs"] = nprocs
        if args.scale is not None:
            sweep["scale"] = [args.scale]
        spec["sweep"] = sweep
    client = ServiceClient(args.url)
    try:
        record = client.submit(spec)
        if args.wait:
            record = client.wait(str(record["id"]), timeout=args.wait_timeout)
    except (ServiceError, TimeoutError, OSError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0 if record.get("state") in (None, "queued", "running", "done") else 1


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.leaderboard:
            response = client.leaderboard(
                None if args.leaderboard == "latest" else args.leaderboard
            )
        elif args.table:
            response = client.table(args.table)
        elif args.list:
            response = client.list_results(
                problem=args.problem,
                ordering=args.ordering,
                strategy=args.strategy,
                nprocs=args.nprocs,
                split="true" if args.split else None,
                limit=args.limit,
                cursor=args.cursor,
                fields=args.fields,
            )
        else:
            if not args.problem:
                print("repro query: --problem is required (or use --list / --table)", file=sys.stderr)
                return 2
            response = client.result(
                problem=args.problem,
                ordering=args.ordering or "metis",
                strategy=args.strategy,
                nprocs=args.nprocs,
                scale=args.scale,
                split="true" if args.split else None,
                compute=(False if args.no_compute else None),
            )
    except (ServiceError, OSError) as exc:
        print(f"repro query: {exc}", file=sys.stderr)
        return 1
    # emit the exact wire bytes: two identical queries diff clean (CI smoke)
    sys.stdout.buffer.write(response.body)
    sys.stdout.buffer.flush()
    print(f"cache: {response.cache or 'n/a'}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "serve":
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        if args.shard_size is not None and args.shard_size < 1:
            parser.error("--shard-size must be >= 1")
        if args.max_pending is not None and args.max_pending < 1:
            parser.error("--max-pending must be >= 1")
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "query":
        return _cmd_query(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
