"""Sweep-as-a-service: job queue daemon, sharded execution, cached HTTP API.

The service subsystem turns the one-shot sweep machinery
(:class:`~repro.session.Session` + the analysis pipeline) into a long-lived,
read-mostly server:

* :mod:`repro.service.jobs` — persistent job model (``queued → running →
  done/failed``) over a crash-safe on-disk journal;
* :mod:`repro.service.shards` — analysis-keyed shard partitioning behind the
  multi-host-ready :class:`ShardBackend` interface;
* :mod:`repro.service.cache` — the shared result cache (TTL/LRU/size
  accounting over the atomic :class:`~repro.pipeline.store.DiskStore`);
* :mod:`repro.service.daemon` — :class:`SweepService`, the daemon gluing the
  above to one engine with retry/backoff/timeout handling;
* :mod:`repro.service.http` / :mod:`repro.service.client` — the stdlib
  HTTP/JSON API (``repro serve``) and its client (``repro submit/query``).

See ``docs/service.md`` for the API reference and deployment notes.
"""

from repro.service.cache import CacheStats, CacheStore
from repro.service.client import QueryResponse, ServiceClient, ServiceError
from repro.service.daemon import QueryOutcome, SweepService, case_spec_from_query, result_key
from repro.service.http import ServiceHTTPServer, canonical_json, make_server
from repro.service.jobs import (
    JOB_STATES,
    JobJournal,
    JobQueue,
    JobRecord,
    JobSpec,
    JobStateError,
    new_job_id,
)
from repro.service.shards import (
    InlineShardBackend,
    ProcessShardBackend,
    ShardBackend,
    ShardTimeout,
    partition_shards,
)

__all__ = [
    "CacheStats",
    "CacheStore",
    "QueryResponse",
    "ServiceClient",
    "ServiceError",
    "QueryOutcome",
    "SweepService",
    "case_spec_from_query",
    "result_key",
    "ServiceHTTPServer",
    "canonical_json",
    "make_server",
    "JOB_STATES",
    "JobJournal",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobStateError",
    "new_job_id",
    "InlineShardBackend",
    "ProcessShardBackend",
    "ShardBackend",
    "ShardTimeout",
    "partition_shards",
]
