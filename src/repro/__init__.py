"""repro — reproduction of *Memory-based scheduling for a parallel multifrontal solver*.

Guermouche & L'Excellent (LIP RR2004-17 / IPPS 2004) propose dynamic,
memory-based scheduling strategies for the parallel multifrontal solver
MUMPS: a memory-levelling slave selection for type-2 nodes (Algorithm 1),
static-knowledge injection into that selection (subtree peaks and predicted
master tasks, Section 5.1), a memory-aware task selection in the local pools
(Algorithm 2), and a static splitting of nodes with large master parts.

This package rebuilds the whole stack needed to study those strategies
offline:

* a sparse-pattern substrate and synthetic analogues of the paper's test
  matrices (:mod:`repro.sparse`, :mod:`repro.experiments.problems`);
* fill-reducing orderings standing in for METIS, PORD, AMD and AMF
  (:mod:`repro.ordering`);
* the symbolic analysis producing assembly trees, plus the splitting and the
  sequential memory models (:mod:`repro.symbolic`, :mod:`repro.analysis`);
* the static mapping and a discrete-event simulator of the asynchronous
  parallel factorization (:mod:`repro.mapping`, :mod:`repro.runtime`);
* the scheduling strategies themselves (:mod:`repro.scheduling`);
* the staged pipeline engine — six content-addressed stages
  (pattern → ordering → tree → split → mapping → simulate), a tiered
  memory/disk artifact store and a process-pool sweep executor
  (:mod:`repro.pipeline`, see ``docs/pipeline.md``);
* a declarative scenario API on top of it all — unified plugin registries
  (:mod:`repro.registry`), parameterized specs and the spec mini-language
  (:mod:`repro.specs`), and the :class:`~repro.session.Session` façade
  regenerating every table and figure of the paper
  (:mod:`repro.session`, :mod:`repro.experiments`, see ``docs/api.md``);
* a columnar result store with streaming append and resumable sweeps —
  ``Session.sweep(store=...)`` skips already-computed cases and the sweep
  service pages ``GET /results`` straight off the columns
  (:mod:`repro.results`, see ``docs/results.md``).

Quickstart
----------
Compare the paper's memory-based strategy against the MUMPS baseline on one
case (the one-call façade)::

    >>> from repro import quick_compare
    >>> quick_compare("XENON2", "metis", nprocs=8, scale=0.4)   # doctest: +SKIP
    {'baseline_peak': ..., 'candidate_peak': ..., 'gain_percent': ...}

Open a session and sweep a declarative grid — strategy parameters and
processor counts are first-class axes, four worker processes share every
analysis artifact through an on-disk store::

    >>> import repro
    >>> with repro.open_session(scale=0.6, cache_dir=".repro_cache", jobs=4) as s:
    ...     results = s.sweep(                                  # doctest: +SKIP
    ...         problems=["XENON2", "PRE2"],
    ...         orderings=["metis", "amd"],
    ...         strategies=["mumps-workload", "hybrid(alpha=0.25)", "hybrid(alpha=0.75)"],
    ...         nprocs=[8, 16, 32],
    ...     )
    ...     payload = [r.to_dict() for r in results]            # JSON-ready

Or drive the engine directly with explicit case specs::

    >>> from repro.pipeline import AnalysisPipeline, CaseSpec
    >>> engine = AnalysisPipeline(nprocs=8, scale=0.4)
    >>> engine.run_case(CaseSpec("XENON2", "metis", "memory-full"))  # doctest: +SKIP
    CaseResult(problem='XENON2', ...)

The same sweeps are available from the command line::

    python -m repro table2 --jobs 4 --nprocs 32 --scale 1.0
    python -m repro sweep --problems XENON2 --strategies 'hybrid(alpha=0.25)' \\
        --nprocs 8,16,32 --jobs 4 --format json
    python -m repro list --format json
"""

from __future__ import annotations

from repro.sparse import SparsePattern
from repro.ordering import compute_ordering, ORDERINGS
from repro.registry import Registry
from repro.specs import ParamSpec, SweepSpec, parse_spec
from repro.symbolic import AssemblyTree, build_assembly_tree, split_large_masters
from repro.analysis import sequential_memory_trace, sequential_stack_peak
from repro.mapping import compute_mapping, StaticMapping, NodeType
from repro.runtime import FactorizationSimulator, SimulationConfig, SimulationResult
from repro.scheduling import STRATEGIES, get_strategy, resolve_strategy
from repro.session import Session, open_session
from repro.pipeline import CaseResult, CaseSpec
from repro.results import CaseResultView, ResultStore, ResultTable, case_key
from repro.experiments import ExperimentRunner, PROBLEMS, get_problem

__version__ = "2.0.0"

__all__ = [
    "SparsePattern",
    "compute_ordering",
    "ORDERINGS",
    "Registry",
    "ParamSpec",
    "SweepSpec",
    "parse_spec",
    "AssemblyTree",
    "build_assembly_tree",
    "split_large_masters",
    "sequential_memory_trace",
    "sequential_stack_peak",
    "compute_mapping",
    "StaticMapping",
    "NodeType",
    "FactorizationSimulator",
    "SimulationConfig",
    "SimulationResult",
    "STRATEGIES",
    "get_strategy",
    "resolve_strategy",
    "Session",
    "open_session",
    "CaseSpec",
    "CaseResult",
    "CaseResultView",
    "ResultStore",
    "ResultTable",
    "case_key",
    "ExperimentRunner",
    "PROBLEMS",
    "get_problem",
    "quick_compare",
    "simulate",
]


def simulate(
    pattern: SparsePattern,
    *,
    ordering: str = "metis",
    strategy: str = "memory-full",
    nprocs: int = 32,
    split_threshold: int | None = None,
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """One-call pipeline: pattern → ordering → tree → mapping → simulation.

    ``ordering`` and ``strategy`` accept the spec mini-language
    (``"hybrid(alpha=0.3)"``).  Convenience wrapper for scripts and
    examples; the experiment harness uses :class:`repro.session.Session`
    instead (it caches the analysis products across strategies).
    """
    perm = compute_ordering(pattern, ordering)
    tree = build_assembly_tree(pattern, perm)
    if split_threshold is not None:
        tree, _ = split_large_masters(tree, split_threshold)
    if config is None:
        config = SimulationConfig.paper(nprocs)
    preset, params = resolve_strategy(strategy)
    slave_selector, task_selector = preset.build(**params)
    simulator = FactorizationSimulator(
        tree,
        config=config,
        slave_selector=slave_selector,
        task_selector=task_selector,
        strategy_name=preset.name,
    )
    return simulator.run()


def quick_compare(
    problem: str,
    ordering: str = "metis",
    *,
    nprocs: int = 32,
    scale: float = 1.0,
    split: bool = False,
) -> dict[str, float]:
    """Compare the paper's memory strategy against the MUMPS baseline on one case."""
    with open_session(nprocs=nprocs, scale=scale) as session:
        return session.compare(problem, ordering, split_baseline=split, split_candidate=split)
