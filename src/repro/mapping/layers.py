"""Node types and static master assignment (the upper layers of the tree).

Above the leaf-subtree layer, every node is assigned a parallelism *type*
(Figure 2 of the paper):

* **type 1** — processed entirely by one statically chosen processor;
* **type 2** — 1-D row parallelism: a statically chosen *master* eliminates
  the fully summed block, dynamically chosen *slaves* update the remaining
  rows;
* **type 3** — the root node, processed by all processors (ScaLAPACK 2-D
  block-cyclic in MUMPS; modelled here as an even split).

The static master assignment "only aims at balancing the memory of the
corresponding factors" (Section 3), which is what :func:`compute_mapping`
implements with a greedy bin-balancing pass over the upper-layer nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.mapping.geist_ng import geist_ng_layer
from repro.mapping.subtree_map import map_subtrees_to_processors

__all__ = ["NodeType", "StaticMapping", "compute_mapping"]


class NodeType(IntEnum):
    """Parallelism type of an assembly-tree node."""

    SUBTREE = 0   # type 1 node inside a leaf subtree
    TYPE1 = 1     # type 1 node of the upper layers
    TYPE2 = 2     # 1-D parallel node (master + dynamic slaves)
    TYPE3 = 3     # root node, 2-D parallel over all processors


@dataclass
class StaticMapping:
    """Result of the static mapping phase.

    Attributes
    ----------
    nprocs:
        Number of processors.
    node_type:
        Per-node :class:`NodeType`.
    owner:
        Per-node statically assigned processor: the processor of the subtree
        for SUBTREE nodes, the owner for upper TYPE1 nodes, the master for
        TYPE2 nodes, and ``-1`` for the TYPE3 root (owned by everybody).
    subtree_roots:
        Roots of the leaf subtrees (Geist-Ng layer).
    subtree_of:
        Per-node index of the leaf subtree root it belongs to, or ``-1`` for
        upper-layer nodes.
    candidates:
        Per-node list of processors allowed to serve as slaves (TYPE2 nodes
        only; empty for others).
    """

    nprocs: int
    node_type: np.ndarray
    owner: np.ndarray
    subtree_roots: list[int]
    subtree_of: np.ndarray
    candidates: dict[int, list[int]] = field(default_factory=dict)

    def nodes_of_type(self, kind: NodeType) -> list[int]:
        return [i for i in range(len(self.node_type)) if self.node_type[i] == kind]

    def statically_assigned_nodes(self, proc: int) -> list[int]:
        """Nodes whose (master) task runs on ``proc``: subtree, type-1 and type-2 masters."""
        return [i for i in range(len(self.owner)) if int(self.owner[i]) == proc]

    def initial_load(self, tree, proc: int) -> float:
        """Initial workload of ``proc``: flops of everything statically assigned to it."""
        total = 0.0
        for i in self.statically_assigned_nodes(proc):
            if self.node_type[i] == NodeType.TYPE2:
                total += tree.type2_master_flops(i)
            else:
                total += tree.factor_flops(i)
        # everyone takes an even share of the type-3 root
        for i in self.nodes_of_type(NodeType.TYPE3):
            total += tree.factor_flops(i) / self.nprocs
        return total

    def summary(self, tree) -> dict[str, float]:
        """Aggregate statistics used by the Figure 2 benchmark and the examples."""
        counts = {t.name: 0 for t in NodeType}
        for i in range(len(self.node_type)):
            counts[NodeType(int(self.node_type[i])).name] += 1
        flops_by_type = {t.name: 0.0 for t in NodeType}
        for i in range(len(self.node_type)):
            flops_by_type[NodeType(int(self.node_type[i])).name] += tree.factor_flops(i)
        total_flops = max(sum(flops_by_type.values()), 1.0)
        out: dict[str, float] = {"nprocs": float(self.nprocs), "subtrees": float(len(self.subtree_roots))}
        for t in NodeType:
            out[f"count_{t.name.lower()}"] = float(counts[t.name])
            out[f"flops_share_{t.name.lower()}"] = flops_by_type[t.name] / total_flops
        return out


def compute_mapping(
    tree,
    nprocs: int,
    *,
    type2_front_threshold: int = 200,
    type2_cb_threshold: int = 40,
    type3_front_threshold: int = 400,
    imbalance_tolerance: float = 1.25,
    min_subtrees_per_proc: float = 1.0,
    subtree_cost: str = "flops",
) -> StaticMapping:
    """Static mapping of ``tree`` over ``nprocs`` processors.

    Parameters
    ----------
    type2_front_threshold, type2_cb_threshold:
        An upper-layer node becomes type 2 when its front order reaches the
        first threshold and its contribution block the second (small CBs give
        nothing to distribute to slaves).
    type3_front_threshold:
        The largest root becomes type 3 when its front reaches this order and
        more than one processor is available.
    subtree_cost:
        Cost metric for the subtree-to-processor mapping (see
        :func:`map_subtrees_to_processors`).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    n = tree.nnodes
    node_type = np.full(n, int(NodeType.TYPE1), dtype=np.int64)
    owner = np.full(n, -1, dtype=np.int64)
    subtree_of = np.full(n, -1, dtype=np.int64)

    # ---------------- leaf subtrees (Geist-Ng + LPT mapping) -------------- #
    subtree_roots = geist_ng_layer(
        tree,
        nprocs,
        imbalance_tolerance=imbalance_tolerance,
        min_subtrees_per_proc=min_subtrees_per_proc,
    )
    subtree_proc = map_subtrees_to_processors(tree, subtree_roots, nprocs, cost=subtree_cost)
    for r in subtree_roots:
        for j in tree.subtree_nodes(r):
            node_type[j] = int(NodeType.SUBTREE)
            owner[j] = subtree_proc[r]
            subtree_of[j] = r

    # ---------------- node types of the upper layers ---------------------- #
    upper = [i for i in range(n) if node_type[i] != int(NodeType.SUBTREE)]
    if nprocs > 1 and upper:
        # the largest root becomes type 3
        roots = [r for r in tree.roots if node_type[r] != int(NodeType.SUBTREE)]
        if roots:
            top = max(roots, key=lambda r: int(tree.nfront[r]))
            if int(tree.nfront[top]) >= type3_front_threshold:
                node_type[top] = int(NodeType.TYPE3)
        for i in upper:
            if node_type[i] == int(NodeType.TYPE3):
                continue
            if (
                int(tree.nfront[i]) >= type2_front_threshold
                and tree.cb_order(i) >= type2_cb_threshold
            ):
                node_type[i] = int(NodeType.TYPE2)

    # ---------------- static master assignment ---------------------------- #
    # Balance the factor memory of the upper-layer masters (Section 3).
    factor_bins = np.zeros(nprocs, dtype=np.float64)
    # seed the bins with the factors produced by the subtrees
    for r in subtree_roots:
        factor_bins[subtree_proc[r]] += tree.subtree_factor_entries(r)
    upper_sorted = sorted(
        (i for i in upper if node_type[i] != int(NodeType.TYPE3)),
        key=lambda i: -tree.factor_entries(i),
    )
    for i in upper_sorted:
        if node_type[i] == int(NodeType.TYPE2):
            my_entries = tree.master_entries(i)
        else:
            my_entries = tree.factor_entries(i)
        p = int(np.argmin(factor_bins))
        owner[i] = p
        factor_bins[p] += my_entries

    candidates: dict[int, list[int]] = {}
    for i in upper:
        if node_type[i] == int(NodeType.TYPE2):
            candidates[i] = [p for p in range(nprocs)]

    return StaticMapping(
        nprocs=nprocs,
        node_type=node_type,
        owner=owner,
        subtree_roots=list(subtree_roots),
        subtree_of=subtree_of,
        candidates=candidates,
    )
