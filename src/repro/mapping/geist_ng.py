"""Geist-Ng construction of the leaf-subtree layer.

The bottom of the assembly tree is cut into *leaf subtrees* (simply called
"subtrees" in the paper), each processed entirely by one processor using only
tree parallelism.  The cut layer — often called L0 — is found with the
top-down algorithm of Geist & Ng (reference [10] of the paper): starting from
the roots, the node whose subtree carries the largest work is repeatedly
replaced by its children until the resulting subtree set can be balanced
across the processors within a tolerance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["geist_ng_layer"]


def _lpt_imbalance(costs: list[float], nprocs: int) -> float:
    """Imbalance (max bin / average bin) of an LPT packing of ``costs``."""
    if not costs:
        return 1.0
    bins = np.zeros(nprocs, dtype=np.float64)
    for c in sorted(costs, reverse=True):
        bins[int(np.argmin(bins))] += c
    total = float(bins.sum())
    if total <= 0:
        return 1.0
    avg = total / nprocs
    return float(bins.max()) / max(avg, 1e-300)


def geist_ng_layer(
    tree,
    nprocs: int,
    *,
    imbalance_tolerance: float = 1.25,
    min_subtrees_per_proc: float = 1.0,
    max_iterations: int | None = None,
) -> list[int]:
    """Roots of the leaf subtrees (the L0 layer).

    Parameters
    ----------
    tree:
        Assembly tree (provides ``roots``, ``children``, ``subtree_flops``).
    nprocs:
        Number of processors.
    imbalance_tolerance:
        Stop refining once an LPT packing of the subtree costs achieves
        ``max/avg`` below this value (and there are enough subtrees).
    min_subtrees_per_proc:
        Require at least ``nprocs * min_subtrees_per_proc`` subtrees before
        accepting a layer, so every processor receives some leaf work.
    max_iterations:
        Safety bound on the refinement loop (defaults to the node count).

    Returns
    -------
    List of node indices, each the root of one leaf subtree.  The union of
    those subtrees never includes an ancestor of another subtree root.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    layer: list[int] = list(tree.roots)
    if not layer:
        return []
    if nprocs == 1:
        return layer
    costs = {r: tree.subtree_flops(r) for r in layer}
    limit = max_iterations if max_iterations is not None else tree.nnodes + 1

    for _ in range(limit):
        enough = len(layer) >= int(np.ceil(nprocs * min_subtrees_per_proc))
        balanced = _lpt_imbalance([costs[r] for r in layer], nprocs) <= imbalance_tolerance
        if enough and balanced:
            break
        # replace the most expensive splittable node by its children
        order = sorted(layer, key=lambda r: -costs[r])
        splittable = next((r for r in order if tree.children(r)), None)
        if splittable is None:
            break
        layer.remove(splittable)
        for c in tree.children(splittable):
            costs[c] = tree.subtree_flops(c)
            layer.append(c)
        costs.pop(splittable, None)
    return sorted(layer)
