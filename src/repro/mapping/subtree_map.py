"""Subtree-to-processor mapping.

Once the Geist-Ng layer is known, each leaf subtree is assigned to exactly
one processor; the paper states that "a subtree-to-processor mapping is used
to balance the computational work of the subtrees onto the processors".  The
reproduction uses the classic Longest-Processing-Time (LPT) greedy packing on
the subtree flop counts, which is also what gives every processor its initial
workload for the dynamic workload-based scheduling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["map_subtrees_to_processors"]


def map_subtrees_to_processors(
    tree,
    subtree_roots: list[int],
    nprocs: int,
    *,
    cost: str = "flops",
) -> dict[int, int]:
    """Assign each leaf subtree to a processor (LPT on the chosen cost).

    Parameters
    ----------
    cost:
        ``"flops"`` balances factorization work (MUMPS' choice), ``"memory"``
        balances the sequential stack peaks of the subtrees instead — exposed
        because the paper's conclusion suggests that memory-aware subtree
        mapping is the natural next step for the symmetric cases.

    Returns
    -------
    Mapping ``subtree_root -> processor``.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if cost not in ("flops", "memory"):
        raise ValueError("cost must be 'flops' or 'memory'")

    if cost == "flops":
        weights = {r: float(tree.subtree_flops(r)) for r in subtree_roots}
    else:
        from repro.analysis.memory import subtree_stack_peaks

        peaks = subtree_stack_peaks(tree)
        weights = {r: float(peaks[r]) for r in subtree_roots}

    bins = np.zeros(nprocs, dtype=np.float64)
    assignment: dict[int, int] = {}
    for r in sorted(subtree_roots, key=lambda x: -weights[x]):
        p = int(np.argmin(bins))
        assignment[r] = p
        bins[p] += weights[r]
    return assignment
