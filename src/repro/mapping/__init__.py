"""Static mapping of the assembly tree onto the processors (Section 3).

MUMPS combines a static phase — computed during the analysis — with dynamic
decisions taken during the factorization.  The static phase determined here
mirrors the description of Section 3 of the paper:

* leaf subtrees are built with the Geist-Ng top-down algorithm and mapped to
  processors so that their computational work is balanced;
* nodes above the subtree layer are *type 1* (one processor), *type 2*
  (1-D row-distributed: one master plus dynamically chosen slaves) or
  *type 3* (the root, 2-D block-cyclic over all processors);
* masters of upper-layer nodes are assigned statically so as to balance the
  memory of the corresponding factors.
"""

from repro.mapping.geist_ng import geist_ng_layer
from repro.mapping.subtree_map import map_subtrees_to_processors
from repro.mapping.layers import NodeType, StaticMapping, compute_mapping

__all__ = [
    "geist_ng_layer",
    "map_subtrees_to_processors",
    "NodeType",
    "StaticMapping",
    "compute_mapping",
]
