"""Declarative, serializable scenario specs and the spec mini-language.

The paper's experiment space is a grid over problems, orderings, scheduling
strategies, splitting and processor counts.  This module provides the
vocabulary to declare any point (or grid) of that space as plain data:

* :class:`ParamSpec` — a name plus keyword parameters, e.g. the strategy
  ``hybrid(alpha=0.3)`` or the ordering ``metis(leaf_size=32)``;
* :func:`parse_spec` — the CLI-friendly string form of a :class:`ParamSpec`
  (``"hybrid(alpha=0.3, use_predictions=false)"``), round-tripping through
  :meth:`ParamSpec.canonical`;
* :class:`SweepSpec` — a declarative grid over every case axis (including
  per-case ``nprocs`` / ``scale`` / ``split_threshold`` overrides), expanded
  with :meth:`SweepSpec.expand` into the
  :class:`~repro.pipeline.stage.CaseSpec` list a
  :class:`~repro.session.Session` or
  :class:`~repro.pipeline.executor.SweepExecutor` runs.

Everything here is JSON round-trippable (``to_dict`` / ``from_dict``) so
sweeps can be stored, shipped and replayed.

Grammar of the mini-language::

    spec   := name [ "(" [param ("," param)*] ")" ]
    param  := key "=" value
    name   := letters, digits, "_", "-", "."
    value  := int | float | true | false | quoted or bare string
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.stage import CaseSpec

__all__ = [
    "ParamSpec",
    "parse_spec",
    "split_spec_list",
    "format_value",
    "canonical_float",
    "SweepSpec",
]

ParamValue = Union[int, float, bool, str]

_NAME_RE = re.compile(r"[A-Za-z0-9_.\-]+")
_SPEC_RE = re.compile(rf"^\s*(?P<name>{_NAME_RE.pattern})\s*(?:\((?P<params>.*)\))?\s*$", re.S)
_KEY_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _parse_value(text: str) -> ParamValue:
    text = text.strip()
    if not text:
        raise ValueError("empty parameter value")
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        raise ValueError(f"parameter value {text!r} is not allowed; omit the parameter instead")
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if _NAME_RE.fullmatch(text):
        return text  # bare word, e.g. leaf_method=fill
    raise ValueError(f"cannot parse parameter value {text!r}")


def canonical_float(value: float) -> float:
    """Round a float to its canonical 12-significant-digit form.

    Sampled parameter values carry binary-representation noise — a tuner that
    draws ``0.1 + 0.2`` gets ``0.30000000000000004``, which would render (and
    cache-key) differently from the hand-written ``0.3`` naming the same
    configuration.  Twelve significant digits is far beyond any physically
    meaningful parameter resolution here and well within float64's 15–17, so
    the rounding is stable: canonicalising twice is the identity.
    """
    return float(f"{value:.12g}")


def format_value(value: ParamValue) -> str:
    """Render one parameter value in its canonical mini-language form."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if _NAME_RE.fullmatch(text):
        return text
    # the grammar has no escape sequences: quote with whichever delimiter the
    # value doesn't contain, so the canonical form always re-parses
    for quote in ("'", '"'):
        if quote not in text:
            return quote + text + quote
    raise ValueError(f"cannot format value {text!r}: it contains both quote characters")


@dataclass(frozen=True)
class ParamSpec:
    """A component name plus keyword parameters, hashable and serializable.

    The parameters are stored as a sorted tuple of ``(key, value)`` pairs so
    two specs naming the same configuration compare (and hash) equal whatever
    the keyword order was.
    """

    name: str
    params: tuple[tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        # numbers are normalised (1.0 → 1, sampled noise rounded away) so
        # specs that compare equal — Python treats 1 == 1.0, and a tuner's
        # 0.30000000000000004 *means* 0.3 — also canonicalise (and
        # cache-key) equally
        def norm(value: ParamValue) -> ParamValue:
            if isinstance(value, float) and not isinstance(value, bool):
                value = canonical_float(value)
                if value.is_integer():
                    return int(value)
            return value

        object.__setattr__(
            self, "params", tuple(sorted((k, norm(v)) for k, v in self.params))
        )

    @property
    def kwargs(self) -> dict[str, ParamValue]:
        """The parameters as a keyword-argument dict."""
        return dict(self.params)

    def canonical(self) -> str:
        """Canonical string form; ``parse_spec`` round-trips it."""
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={format_value(v)}" for k, v in self.params)
        return f"{self.name}({inner})"

    def with_defaults(self, defaults: Mapping[str, ParamValue]) -> "ParamSpec":
        """This spec with ``defaults`` filled in for absent parameters."""
        merged = {**defaults, **self.kwargs}
        return ParamSpec(self.name, tuple(merged.items()))

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "params": self.kwargs}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ParamSpec":
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise ValueError(f"ParamSpec params must be a mapping, got {params!r}")
        return cls(str(data["name"]), tuple(params.items()))  # type: ignore[arg-type]

    def __str__(self) -> str:
        return self.canonical()


def _split_top_level(text: str, sep: str = ",") -> list[str]:
    """Split on ``sep`` outside parentheses and quotes (for params and CLI lists)."""
    parts: list[str] = []
    depth = 0
    quote = ""
    current: list[str] = []
    for ch in text:
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "'\"":
            quote = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in {text!r}")
        elif ch == sep and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if depth != 0 or quote:
        raise ValueError(f"unbalanced parentheses or quotes in {text!r}")
    parts.append("".join(current))
    return parts


def split_spec_list(text: str) -> list[str]:
    """Split a comma-separated list of specs, respecting parentheses.

    ``"mumps-workload,hybrid(alpha=0.25,use_predictions=false)"`` →
    ``["mumps-workload", "hybrid(alpha=0.25,use_predictions=false)"]``.
    """
    return [part.strip() for part in _split_top_level(text) if part.strip()]


def parse_spec(text: Union[str, ParamSpec]) -> ParamSpec:
    """Parse ``"name"`` or ``"name(k=v, ...)"`` into a :class:`ParamSpec`.

    Idempotent on :class:`ParamSpec` inputs.  Raises ``ValueError`` on
    malformed syntax, duplicate keys or unparseable values.
    """
    if isinstance(text, ParamSpec):
        return text
    match = _SPEC_RE.match(text)
    if match is None:
        raise ValueError(
            f"cannot parse spec {text!r}; expected 'name' or 'name(key=value, ...)'"
        )
    name = match.group("name")
    raw = match.group("params")
    if raw is None:
        return ParamSpec(name)
    params: dict[str, ParamValue] = {}
    for item in _split_top_level(raw):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        key = key.strip()
        if not eq:
            raise ValueError(f"parameter {item!r} in spec {text!r} must be 'key=value'")
        if not _KEY_RE.match(key):
            raise ValueError(f"bad parameter name {key!r} in spec {text!r}")
        if key in params:
            raise ValueError(f"duplicate parameter {key!r} in spec {text!r}")
        params[key] = _parse_value(value)
    return ParamSpec(name, tuple(params.items()))


# --------------------------------------------------------------------------- #
# sweeps
# --------------------------------------------------------------------------- #
def _axis(value: object, *, scalar_types: tuple[type, ...]) -> tuple:
    """Normalise a sweep axis: a scalar becomes a one-element axis."""
    if value is None or isinstance(value, scalar_types):
        return (value,)
    if isinstance(value, Iterable) and not isinstance(value, (str, bytes)):
        items = tuple(value)
        return items if items else (None,)
    return (value,)


@dataclass
class SweepSpec:
    """A declarative grid over every case axis.

    Every attribute is an axis; scalars are promoted to one-element axes, so
    ``SweepSpec(problems="XENON2", nprocs=[8, 16, 32])`` is valid.  ``None``
    in ``nprocs`` / ``scale`` / ``split_threshold`` means "the engine
    default" for that case.

    :meth:`expand` produces the cartesian product in problem-major order
    (problems × orderings × strategies × split × nprocs × scale ×
    split_threshold × faults), the order the results come back in.

    ``faults`` is an axis of fault-injection specs in the mini-language of
    :mod:`repro.faults` (``None`` = the unperturbed machine); ``fault_seed``
    and ``replications`` are scalar knobs applied to every *faulted* case of
    the grid — clean cases keep their defaults, so a sweep mixing ``None``
    with fault specs leaves the clean cases byte-identical to a sweep
    without the fault axis.
    """

    problems: Sequence[str] = ()
    orderings: Sequence[str] = ("metis",)
    strategies: Sequence[str] = ("memory-full",)
    split: Sequence[bool] = (False,)
    nprocs: Sequence[int | None] = (None,)
    scale: Sequence[float | None] = (None,)
    split_threshold: Sequence[int | None] = (None,)
    faults: Sequence[str | None] = (None,)
    track_traces: bool = False
    fault_seed: int = 0
    replications: int = 1

    def __post_init__(self) -> None:
        self.problems = _axis(self.problems, scalar_types=(str,))
        self.orderings = _axis(self.orderings, scalar_types=(str,))
        self.strategies = _axis(self.strategies, scalar_types=(str,))
        self.split = _axis(self.split, scalar_types=(bool,))
        self.nprocs = _axis(self.nprocs, scalar_types=(int,))
        self.scale = _axis(self.scale, scalar_types=(int, float))
        self.split_threshold = _axis(self.split_threshold, scalar_types=(int,))
        self.faults = _axis(self.faults, scalar_types=(str,))
        if self.problems == (None,):
            raise ValueError("SweepSpec needs at least one problem")
        # an explicitly empty axis would otherwise surface as an opaque
        # parse_spec(None) TypeError deep inside expand()
        if self.orderings == (None,):
            raise ValueError("SweepSpec needs at least one ordering")
        if self.strategies == (None,):
            raise ValueError("SweepSpec needs at least one strategy")
        # split is required too: an explicit None (or an empty axis) used to
        # slip through _axis as (None,) and be silently coerced to False
        if self.split == (None,):
            raise ValueError("SweepSpec needs at least one split value")
        self._check_axis("split", self.split, (bool,), allow_none=False)
        self._check_axis("nprocs", self.nprocs, (int,), allow_none=True)
        self._check_axis("scale", self.scale, (int, float), allow_none=True)
        self._check_axis("split_threshold", self.split_threshold, (int,), allow_none=True)
        self._check_axis("faults", self.faults, (str,), allow_none=True)
        if not isinstance(self.fault_seed, int) or isinstance(self.fault_seed, bool):
            raise ValueError(f"SweepSpec fault_seed must be an int, got {self.fault_seed!r}")
        if self.fault_seed < 0:
            raise ValueError("SweepSpec fault_seed must be >= 0")
        if not isinstance(self.replications, int) or isinstance(self.replications, bool):
            raise ValueError(
                f"SweepSpec replications must be an int, got {self.replications!r}"
            )
        if self.replications < 1:
            raise ValueError("SweepSpec replications must be >= 1")
        # parse eagerly so a malformed fault spec fails at declaration time,
        # not deep inside a worker process
        for value in self.faults:
            if value is not None:
                from repro.faults import parse_faults  # deferred: faults imports specs

                parse_faults(value)

    @staticmethod
    def _check_axis(
        name: str, axis: tuple, types: tuple[type, ...], *, allow_none: bool
    ) -> None:
        expected = " or ".join(t.__name__ for t in types) + (" or None" if allow_none else "")
        for value in axis:
            if value is None and allow_none:
                continue
            # bool is an int subclass, so nprocs=True would otherwise pass
            # the isinstance check and reach the engine as a processor count
            if isinstance(value, bool) and bool not in types:
                raise ValueError(
                    f"SweepSpec {name} values must be {expected}, got the bool {value!r}"
                )
            if not isinstance(value, types):
                raise ValueError(f"SweepSpec {name} values must be {expected}, got {value!r}")

    def __len__(self) -> int:
        return (
            len(self.problems) * len(self.orderings) * len(self.strategies)
            * len(self.split) * len(self.nprocs) * len(self.scale)
            * len(self.split_threshold) * len(self.faults)
        )

    def expand(self) -> list["CaseSpec"]:
        """The grid as explicit :class:`~repro.pipeline.stage.CaseSpec` values."""
        from repro.pipeline.stage import CaseSpec  # deferred: stage imports this module

        def canonical_fault_axis(value):
            if value is None:
                return None
            from repro.faults import canonical_faults

            return canonical_faults(value)

        return [
            CaseSpec(
                problem=problem,
                ordering=str(parse_spec(ordering)),
                strategy=str(parse_spec(strategy)),
                split=bool(split),
                track_traces=self.track_traces,
                nprocs=nprocs,
                scale=scale,
                split_threshold=split_threshold,
                faults=canonical_fault_axis(faults),
                # the scalar fault knobs bind to faulted cases only, so the
                # clean points of a mixed grid keep their seed-era specs
                fault_seed=self.fault_seed if faults is not None else 0,
                replications=self.replications if faults is not None else 1,
            )
            for problem in self.problems
            for ordering in self.orderings
            for strategy in self.strategies
            for split in self.split
            for nprocs in self.nprocs
            for scale in self.scale
            for split_threshold in self.split_threshold
            for faults in self.faults
        ]

    def to_dict(self) -> dict[str, object]:
        return {
            "problems": list(self.problems),
            "orderings": list(self.orderings),
            "strategies": list(self.strategies),
            "split": list(self.split),
            "nprocs": list(self.nprocs),
            "scale": list(self.scale),
            "split_threshold": list(self.split_threshold),
            "faults": list(self.faults),
            "track_traces": self.track_traces,
            "fault_seed": self.fault_seed,
            "replications": self.replications,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object], *, strict: bool = True) -> "SweepSpec":
        from repro.serialize import decode_fields

        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        payload = decode_fields("sweep_spec", data, known, label="SweepSpec", strict=strict)
        return cls(**payload)  # type: ignore[arg-type]
