#!/usr/bin/env python
"""The paper's experiment in miniature: dynamic strategies × static splitting.

For one unsymmetric problem and one ordering, this example runs the four
configurations the paper's Tables 2-5 are built from:

* original MUMPS (workload-based scheduling), unmodified tree;
* memory-based dynamic strategies, unmodified tree (→ Table 2 entry);
* original MUMPS on the split tree;
* memory-based strategies on the split tree (→ Table 3 entry, and the
  combination reported in Table 5).

It also prints the per-processor peaks so the *balancing* effect of
Algorithm 1 — not just the max — is visible, together with the simulated
factorization time (Table 6's concern).

Run with::

    python examples/memory_scheduling_study.py [PROBLEM] [ORDERING]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.experiments import ExperimentRunner
from repro.experiments.runner import percentage_decrease


def main(problem: str = "TWOTONE", ordering: str = "amd") -> None:
    runner = ExperimentRunner(nprocs=16, scale=0.5)
    print(f"problem {problem}, ordering {ordering.upper()}, 16 simulated processors\n")

    cases = {
        "MUMPS workload, no split": ("mumps-workload", False),
        "memory-based,  no split": ("memory-full", False),
        "MUMPS workload, split": ("mumps-workload", True),
        "memory-based,  split": ("memory-full", True),
    }
    results = {}
    for label, (strategy, split) in cases.items():
        case = runner.run_case(problem, ordering, strategy, split=split)
        results[label] = case
        peaks = np.sort(case.per_proc_peak_stack)[::-1]
        print(f"{label:26s} max peak {case.max_peak_stack:12,.0f}  "
              f"avg {case.avg_peak_stack:12,.0f}  time {case.total_time*1e3:8.2f} ms")
        print(f"{'':26s} top-4 processor peaks: "
              + ", ".join(f"{p:,.0f}" for p in peaks[:4]))

    base = results["MUMPS workload, no split"]
    print("\ngains of the paper's tables (positive = less memory):")
    print(f"  Table 2 entry (dynamic only)      : "
          f"{percentage_decrease(base.max_peak_stack, results['memory-based,  no split'].max_peak_stack):6.1f}%")
    split_base = results["MUMPS workload, split"]
    print(f"  Table 3 entry (dynamic, split tree): "
          f"{percentage_decrease(split_base.max_peak_stack, results['memory-based,  split'].max_peak_stack):6.1f}%")
    print(f"  Table 5 entry (static + dynamic)   : "
          f"{percentage_decrease(base.max_peak_stack, results['memory-based,  split'].max_peak_stack):6.1f}%")
    combined = results["memory-based,  split"]
    time_loss = 100.0 * (combined.total_time - base.total_time) / base.total_time
    print(f"  Table 6 entry (time loss)          : {time_loss:6.1f}%")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(*(args if args else ()))
