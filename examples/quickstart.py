#!/usr/bin/env python
"""Quickstart: one matrix, one ordering, two scheduling strategies.

Builds a small 3-D problem, runs the full pipeline (ordering → assembly tree
→ static mapping → simulated parallel factorization) under the original MUMPS
workload-based scheduling and under the paper's memory-based scheduling, and
reports the per-processor stack-memory peaks the paper's tables are made of.

Run with::

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import SimulationConfig, simulate
from repro.sparse import grid_3d


def main() -> None:
    # a 3-D 14x14x14 Laplacian-like problem (2744 unknowns)
    pattern = grid_3d(14, 14, 14, name="quickstart-grid")
    print(f"problem: {pattern}")

    # the paper's node-type thresholds at 16 simulated processors
    config = SimulationConfig.paper(nprocs=16)

    results = {}
    for strategy in ("mumps-workload", "memory-full"):
        result = simulate(pattern, ordering="metis", strategy=strategy, config=config)
        results[strategy] = result
        print(f"\nstrategy {strategy!r}")
        print(f"  max  stack peak : {result.max_peak_stack:12,.0f} entries")
        print(f"  mean stack peak : {result.avg_peak_stack:12,.0f} entries")
        print(f"  simulated time  : {result.total_time * 1e3:12.2f} ms")
        print(f"  factors produced: {result.total_factor_entries:12,.0f} entries")

    base = results["mumps-workload"].max_peak_stack
    mem = results["memory-full"].max_peak_stack
    gain = 100.0 * (base - mem) / base if base else 0.0
    print(f"\nmemory-based scheduling changes the max stack peak by {gain:+.1f}%")
    print("(positive = less memory, the quantity reported in Tables 2, 3 and 5 of the paper)")

    # the same comparison on a registered test problem, declaratively: one
    # session, one sweep over a strategy-parameter axis and a processor axis
    import repro

    with repro.open_session(nprocs=8, scale=0.25) as session:
        sweep = session.sweep(
            problems="XENON2",
            strategies=["mumps-workload", "hybrid(alpha=0.5)"],
            nprocs=[4, 8],
        )
    print("\ndeclarative sweep (XENON2, strategy x nprocs grid):")
    for case in sweep:
        print(
            f"  {case.strategy:18s} np={case.nprocs:2d}  "
            f"max stack peak = {case.max_peak_stack:10,.0f} entries  "
            f"time = {case.total_time * 1e3:6.2f} ms  messages = {case.messages}"
        )


if __name__ == "__main__":
    main()
