#!/usr/bin/env python
"""Visualise the stack-memory evolution that motivates the paper.

Two views of the same problem:

1. the *sequential* multifrontal stack (factors grow monotonically, the stack
   of contribution blocks oscillates with the tree traversal — Section 2);
2. the *parallel* per-processor stack under the two scheduling strategies,
   rendered as ascii sparklines, showing how the memory-based strategy keeps
   the most loaded processor lower.

Run with::

    python examples/stack_evolution.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.analysis import sequential_memory_trace
from repro.mapping import compute_mapping
from repro.ordering import compute_ordering
from repro.runtime import FactorizationSimulator, SimulationConfig
from repro.scheduling import get_strategy
from repro.sparse import grid_3d
from repro.symbolic import build_assembly_tree


def sparkline(values, width=72):
    levels = " ▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=float)
    if values.size == 0 or values.max() <= 0:
        return " " * width
    idx = np.linspace(0, values.size - 1, width).astype(int)
    scaled = np.round(values[idx] / values.max() * (len(levels) - 1)).astype(int)
    return "".join(levels[v] for v in scaled)


def main() -> None:
    pattern = grid_3d(12, 12, 12)
    tree = build_assembly_tree(pattern, compute_ordering(pattern, "metis"), keep_variables=False)

    print("=== sequential multifrontal memory (Section 2) ===")
    trace = sequential_memory_trace(tree)
    arrays = trace.as_arrays()
    print("factors (monotone): " + sparkline(arrays["factors"]))
    print("stack + front     : " + sparkline(arrays["working"]))
    print(f"peak of the working storage: {trace.peak_working:,.0f} entries, "
          f"final factors: {trace.final_factors:,.0f} entries")

    print("\n=== parallel per-processor stack (8 processors) ===")
    config = SimulationConfig.paper(nprocs=8, track_traces=True)
    mapping = compute_mapping(tree, 8, **config.mapping_params())
    for strategy in ("mumps-workload", "memory-full"):
        slave, task = get_strategy(strategy).build()
        result = FactorizationSimulator(
            tree, config=config, mapping=mapping, slave_selector=slave, task_selector=task
        ).run()
        print(f"\nstrategy {strategy!r}: max peak {result.max_peak_stack:,.0f} entries")
        worst = int(np.argmax(result.per_proc_peak_stack))
        for proc in range(result.nprocs):
            tag = "  <-- peak processor" if proc == worst else ""
            print(f"  P{proc}: {result.trace.ascii_sparkline(proc, 60)}{tag}")


if __name__ == "__main__":
    main()
