#!/usr/bin/env python
"""Impact of the fill-reducing ordering on the assembly tree and its memory.

The paper stresses (Section 2 and [12]) that the stack-memory behaviour of
the multifrontal method is driven by the topology of the assembly tree, which
itself is dictated by the reordering technique.  This example reproduces that
observation on one problem: for each of the four orderings of the paper
(METIS, PORD, AMD, AMF — plus RCM as an extreme), it reports the tree shape,
the sequential stack peak, and the simulated 16-processor peak.

Run with::

    python examples/ordering_impact.py [PROBLEM]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import sequential_stack_peak
from repro.experiments import get_problem
from repro.mapping import compute_mapping
from repro.ordering import compute_ordering
from repro.runtime import FactorizationSimulator, SimulationConfig
from repro.scheduling import get_strategy
from repro.symbolic import build_assembly_tree


def main(problem_name: str = "XENON2") -> None:
    spec = get_problem(problem_name)
    pattern = spec.build(0.5)
    print(f"problem: {spec.name} analogue, n={pattern.n}, nnz={pattern.nnz}")
    print(f"{'ordering':10s} {'nodes':>6s} {'depth':>6s} {'max front':>10s} "
          f"{'factors':>12s} {'seq. peak':>12s} {'par. peak(16p)':>15s}")

    config = SimulationConfig.paper(nprocs=16)
    for ordering in ("metis", "pord", "amd", "amf", "rcm"):
        perm = compute_ordering(pattern, ordering)
        tree = build_assembly_tree(pattern, perm, keep_variables=False)
        mapping = compute_mapping(tree, 16, **config.mapping_params())
        slave, task = get_strategy("mumps-workload").build()
        result = FactorizationSimulator(
            tree, config=config, mapping=mapping, slave_selector=slave, task_selector=task
        ).run()
        print(
            f"{ordering:10s} {tree.nnodes:6d} {tree.depth():6d} {int(tree.nfront.max()):10d} "
            f"{tree.total_factor_entries():12,d} {sequential_stack_peak(tree):12,.0f} "
            f"{result.max_peak_stack:15,.0f}"
        )

    print("\nDeep, unbalanced trees (AMD/AMF/RCM) and wide balanced trees (METIS/PORD)")
    print("stress the scheduler differently — this is why the paper's tables have one")
    print("column per ordering.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "XENON2")
