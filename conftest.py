"""Repository-level pytest configuration.

Adds ``src/`` to ``sys.path`` so the test-suite and the benchmarks run
against the in-tree sources even when the package has not been installed
(useful on machines without network access where ``pip install -e .`` cannot
resolve build dependencies; ``python setup.py develop`` is the supported
offline install).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
